"""Tests for the batched serving runtime (repro.serve).

Covers: structural fingerprints, scheduling policies, the structural
plan-cache layer (structure reused, matrices rebound), cache-hit
accounting on identical-structure batches, per-job correctness against
the flat simulator, seeded shot-sampling distributions against exact
probabilities, expectation values against a dense-matrix reference, and
the manifest / CLI surface.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.generators import qaoa, qft
from repro.partition import get_partitioner
from repro.serve import (
    BatchRunner,
    SimJob,
    circuit_fingerprint,
    default_limit,
    fifo_order,
    grouped_order,
    load_manifest,
    order_jobs,
    results_to_manifest,
)
from repro.sv import (
    HierarchicalExecutor,
    PlanCache,
    StateVectorSimulator,
    pauli_expectation,
    sample_counts,
    zero_state,
)

from conftest import full_unitary, random_circuit


def sweep_circuits(n=8, jobs=4, rounds=1):
    """Structurally identical QAOA circuits with per-job angles."""
    return [
        qaoa(
            n,
            p=rounds,
            gammas=[0.2 + 0.05 * k + 0.1 * r for r in range(rounds)],
            betas=[0.9 - 0.04 * k - 0.06 * r for r in range(rounds)],
        )
        for k in range(jobs)
    ]


def flat_state(circuit):
    sim = StateVectorSimulator(circuit.num_qubits)
    sim.run(circuit)
    return sim.state


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


class TestFingerprint:
    def test_parameters_do_not_change_fingerprint(self):
        a, b = sweep_circuits(jobs=2)
        assert circuit_fingerprint(a) == circuit_fingerprint(b)

    def test_structure_changes_fingerprint(self):
        base = QuantumCircuit(3).h(0).cx(0, 1)
        other_gate = QuantumCircuit(3).h(0).cx(0, 2)      # different operand
        other_name = QuantumCircuit(3).h(0).cz(0, 1)      # different gate
        longer = QuantumCircuit(3).h(0).cx(0, 1).h(2)     # extra gate
        wider = QuantumCircuit(4).h(0).cx(0, 1)           # extra qubit
        fps = {
            circuit_fingerprint(c)
            for c in (base, other_gate, other_name, longer, wider)
        }
        assert len(fps) == 5

    def test_gate_order_matters(self):
        ab = QuantumCircuit(2).h(0).h(1)
        ba = QuantumCircuit(2).h(1).h(0)
        assert circuit_fingerprint(ab) != circuit_fingerprint(ba)

    def test_deterministic_across_copies(self):
        qc = random_circuit(5, 30, seed=3)
        assert circuit_fingerprint(qc) == circuit_fingerprint(qc.copy())


# ---------------------------------------------------------------------------
# Scheduling
# ---------------------------------------------------------------------------


class TestScheduler:
    def test_fifo_is_identity(self):
        assert fifo_order(["a", "b", "a", "c"]) == [0, 1, 2, 3]

    def test_grouped_clusters_by_first_seen(self):
        assert grouped_order(["a", "b", "a", "c", "b", "a"]) == [
            0, 2, 5, 1, 4, 3,
        ]

    def test_grouped_is_a_permutation(self):
        fps = [f"s{k % 3}" for k in range(10)]
        assert sorted(grouped_order(fps)) == list(range(10))

    def test_unknown_schedule_rejected(self):
        with pytest.raises(KeyError):
            order_jobs("shortest-job-first", ["a"])


# ---------------------------------------------------------------------------
# Structural plan-cache layer
# ---------------------------------------------------------------------------


class TestStructuralPlanCache:
    def test_structure_reused_matrices_rebound(self):
        a, b = sweep_circuits(n=6, jobs=2)
        limit = default_limit(6)
        partition = get_partitioner("dagP").partition(a, limit)
        cache = PlanCache()
        fp = circuit_fingerprint(a)
        part = partition.parts[0]
        plan_a = cache.get_or_bind(
            a, part.gate_indices, part.qubits, structural_key=fp
        )
        plan_b = cache.get_or_bind(
            b, part.gate_indices, part.qubits, structural_key=fp
        )
        # One structure, shared; distinct matrices (angles differ).
        assert plan_a.structure is plan_b.structure
        assert cache.structure_misses == 1 and cache.structure_hits == 1
        assert plan_a.qubits == plan_b.qubits
        assert any(
            not np.array_equal(oa.matrix(), ob.matrix())
            for oa, ob in zip(plan_a.ops, plan_b.ops)
        )

    def test_same_circuit_hits_bound_layer(self):
        (a,) = sweep_circuits(n=6, jobs=1)
        partition = get_partitioner("dagP").partition(a, default_limit(6))
        cache = PlanCache()
        fp = circuit_fingerprint(a)
        part = partition.parts[0]
        args = (a, part.gate_indices, part.qubits)
        plan1 = cache.get_or_bind(*args, structural_key=fp)
        plan2 = cache.get_or_bind(*args, structural_key=fp)
        assert plan1 is plan2
        assert cache.hits == 1 and cache.misses == 1

    def test_structural_key_execution_is_correct_per_job(self):
        """The stale-matrix trap: same structure, different angles must
        yield each job's own state, not the first job's."""
        circuits = sweep_circuits(n=7, jobs=3)
        partition = get_partitioner("dagP").partition(
            circuits[0], default_limit(7)
        )
        executor = HierarchicalExecutor()
        fp = circuit_fingerprint(circuits[0])
        for qc in circuits:
            state = zero_state(7)
            executor.run(qc, partition, state, structural_key=fp)
            np.testing.assert_allclose(
                state, flat_state(qc), atol=1e-10, rtol=0
            )

    def test_gather_tables_shared_across_binds(self):
        a, b = sweep_circuits(n=6, jobs=2)
        partition = get_partitioner("dagP").partition(a, default_limit(6))
        cache = PlanCache()
        fp = circuit_fingerprint(a)
        part = partition.parts[0]
        plan_a = cache.get_or_bind(
            a, part.gate_indices, part.qubits, structural_key=fp
        )
        plan_b = cache.get_or_bind(
            b, part.gate_indices, part.qubits, structural_key=fp
        )
        assert plan_a.gather_table(6) is plan_b.gather_table(6)


# ---------------------------------------------------------------------------
# BatchRunner
# ---------------------------------------------------------------------------


class TestBatchRunner:
    def test_thirty_two_identical_jobs_compile_one_plan(self):
        """Acceptance satellite: a 32-job identical-structure batch
        partitions once and compiles each part's structure exactly once."""
        jobs = [
            SimJob(f"j{k}", qc, want_state=True)
            for k, qc in enumerate(sweep_circuits(n=8, jobs=32))
        ]
        runner = BatchRunner(schedule="grouped")
        report = runner.run(jobs)
        s = report.stats
        parts = report.results[0].num_parts
        assert s.num_jobs == 32 and s.unique_structures == 1
        assert s.partitions_computed == 1 and s.partition_hits == 31
        assert s.structures_compiled == parts
        assert s.structure_hits == 31 * parts
        assert s.plans_bound == 32 * parts

    @pytest.mark.parametrize("schedule", ["fifo", "grouped"])
    @pytest.mark.parametrize("workers", [1, 3])
    def test_states_match_flat_simulator(self, schedule, workers):
        circuits = sweep_circuits(n=7, jobs=3) + [qft(6), qft(6)]
        jobs = [
            SimJob(f"j{k}", qc, want_state=True)
            for k, qc in enumerate(circuits)
        ]
        report = BatchRunner(schedule=schedule, workers=workers).run(jobs)
        assert [r.job_id for r in report.results] == [j.job_id for j in jobs]
        for job, res in zip(jobs, report.results):
            np.testing.assert_allclose(
                res.state, flat_state(job.circuit), atol=1e-10, rtol=0
            )

    def test_results_deterministic_across_schedules_and_workers(self):
        circuits = sweep_circuits(n=6, jobs=4)
        jobs = [
            SimJob(f"j{k}", qc, shots=64, seed=5, observables=("ZZIIII",))
            for k, qc in enumerate(circuits)
        ]
        reports = [
            BatchRunner(schedule=schedule, workers=workers).run(jobs)
            for schedule in ("fifo", "grouped")
            for workers in (1, 2)
        ]
        ref = reports[0]
        for rep in reports[1:]:
            for a, b in zip(ref.results, rep.results):
                assert a.counts == b.counts
                assert a.expectations == b.expectations

    def test_outputs_only_when_requested(self):
        qc = qft(5)
        jobs = [
            SimJob("state", qc, want_state=True),
            SimJob("shots", qc, shots=10),
            SimJob("obs", qc, observables=("ZIIII",)),
        ]
        results = BatchRunner().run(jobs).results
        assert results[0].state is not None and results[0].counts is None
        assert results[1].counts is not None and results[1].state is None
        assert results[2].expectations is not None and results[2].state is None

    def test_mixed_structures_partition_per_structure(self):
        jobs = [
            SimJob("a0", qaoa(6, p=1)),
            SimJob("b0", qft(6)),
            SimJob("a1", qaoa(6, p=1, gammas=[1.0], betas=[0.1])),
        ]
        report = BatchRunner().run(jobs)
        assert report.stats.partitions_computed == 2
        assert report.stats.partition_hits == 1
        assert report.results[2].partition_cached is True

    def test_explicit_limit_respected(self):
        jobs = [SimJob("j", qft(6), want_state=True)]
        report = BatchRunner(limit=4, strategy="DFS").run(jobs)
        np.testing.assert_allclose(
            report.results[0].state, flat_state(qft(6)), atol=1e-10, rtol=0
        )

    def test_bad_configuration_rejected(self):
        with pytest.raises(KeyError):
            BatchRunner(schedule="lifo")
        with pytest.raises(ValueError):
            BatchRunner(workers=0)


# ---------------------------------------------------------------------------
# Regression: explicit limit handling (limit=0 used to mean "unset")
# ---------------------------------------------------------------------------


class TestLimitHandling:
    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_non_positive_limit_rejected_at_construction(self, bad):
        with pytest.raises(ValueError, match="limit must be >= 1"):
            BatchRunner(limit=bad)

    def test_none_limit_derives_default(self):
        report = BatchRunner(limit=None).run(
            [SimJob("j", qft(6), want_state=True)]
        )
        np.testing.assert_allclose(
            report.results[0].state, flat_state(qft(6)), atol=1e-10, rtol=0
        )

    def test_explicit_small_limit_is_honoured(self):
        """A small explicit limit is a real setting, not "unset": it
        must produce a different (finer) partition than the default."""
        job = SimJob("j", qft(6), want_state=True)
        tight = BatchRunner(limit=2, strategy="DFS").run([job])
        loose = BatchRunner(strategy="DFS").run([SimJob("j", qft(6),
                                                        want_state=True)])
        assert tight.results[0].error is None
        assert tight.results[0].num_parts > loose.results[0].num_parts
        np.testing.assert_allclose(
            tight.results[0].state, flat_state(qft(6)), atol=1e-10, rtol=0
        )

    def test_manifest_limit_zero_rejected(self):
        with pytest.raises(ValueError, match="limit"):
            load_manifest({"limit": 0, "jobs": []})
        with pytest.raises(ValueError, match="limit"):
            load_manifest({"limit": -3, "jobs": []})
        with pytest.raises(ValueError, match="limit"):
            load_manifest({"limit": "4", "jobs": []})

    def test_manifest_limit_null_and_valid(self):
        _, options = load_manifest({"limit": None, "jobs": []})
        assert "limit" not in options
        _, options = load_manifest({"limit": 4, "jobs": []})
        assert options == {"limit": 4}

    def test_cli_limit_zero_rejected(self, tmp_path):
        from repro.cli import main

        manifest_path = tmp_path / "jobs.json"
        manifest_path.write_text(json.dumps(MANIFEST))
        with pytest.raises(SystemExit) as excinfo:
            main(["batch", str(manifest_path), "--limit", "0"])
        assert excinfo.value.code == 2


# ---------------------------------------------------------------------------
# Regression: per-job error isolation (one bad job used to discard all)
# ---------------------------------------------------------------------------


class TestErrorIsolation:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_one_failing_job_returns_partial_batch(self, workers):
        circuits = sweep_circuits(n=6, jobs=3)
        jobs = [
            SimJob(f"g{k}", qc, want_state=True)
            for k, qc in enumerate(circuits)
        ]
        # Observable length mismatches the register: raises at run time.
        jobs.insert(1, SimJob("bad", qft(6), observables=("ZZZ",)))
        report = BatchRunner(workers=workers).run(jobs)
        assert [r.job_id for r in report.results] == [
            "g0", "bad", "g1", "g2",
        ]
        bad = report.results[1]
        assert bad.error is not None and "ValueError" in bad.error
        assert bad.state is None and bad.counts is None
        assert report.stats.errored == 1
        for job, res in zip(jobs, report.results):
            if res.error is None:
                np.testing.assert_allclose(
                    res.state, flat_state(job.circuit), atol=1e-10, rtol=0
                )

    def test_error_rendered_in_results_manifest(self):
        jobs = [
            SimJob("ok", qft(5), shots=8),
            SimJob("bad", qft(5), observables=("ZZ",)),  # wrong length
        ]
        report = BatchRunner().run(jobs)
        manifest = results_to_manifest(
            report.results, stats=vars(report.stats)
        )
        entries = manifest["jobs"]
        assert "error" not in entries[0] and "counts" in entries[0]
        assert entries[1]["error"].startswith("ValueError")
        assert "counts" not in entries[1] and "state" not in entries[1]
        assert manifest["stats"]["errored"] == 1
        json.dumps(manifest)  # still serialisable

    def test_keyboard_interrupt_still_propagates(self, monkeypatch):
        runner = BatchRunner()
        monkeypatch.setattr(
            runner, "_run_one",
            lambda *a, **k: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        with pytest.raises(KeyboardInterrupt):
            runner.run([SimJob("j", qft(4))])


# ---------------------------------------------------------------------------
# Regression: per-run stats under concurrent run() calls on one runner
# ---------------------------------------------------------------------------


class TestConcurrentRunStats:
    def test_concurrent_runs_each_report_exact_stats(self):
        """Two threads sharing one runner (the daemon's normal mode)
        must each see their own cache accounting, not an interleaved
        snapshot delta."""
        import threading

        runner = BatchRunner(schedule="grouped")
        jobs_a = [
            SimJob(f"a{k}", qc, want_state=True)
            for k, qc in enumerate(sweep_circuits(n=6, jobs=6))
        ]
        # Distinct objects per job so every job exercises the bind layer.
        jobs_b = [
            SimJob(f"b{k}", qft(6).copy(), want_state=True)
            for k in range(6)
        ]
        barrier = threading.Barrier(2)
        reports = {}

        def go(name, jobs):
            barrier.wait()
            reports[name] = runner.run(jobs)

        threads = [
            threading.Thread(target=go, args=("a", jobs_a)),
            threading.Thread(target=go, args=("b", jobs_b)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for name, jobs in (("a", jobs_a), ("b", jobs_b)):
            stats = reports[name].stats
            parts = reports[name].results[0].num_parts
            assert stats.num_jobs == 6
            assert stats.unique_structures == 1
            assert stats.partitions_computed == 1, name
            assert stats.partition_hits == 5, name
            assert stats.structures_compiled == parts, name
            assert stats.structure_hits == 5 * parts, name
            assert stats.plans_bound == 6 * parts, name
            for job, res in zip(jobs, reports[name].results):
                np.testing.assert_allclose(
                    res.state, flat_state(job.circuit), atol=1e-10, rtol=0
                )

    def test_lifetime_totals_still_accumulate(self):
        runner = BatchRunner()
        runner.run([SimJob("x", qft(5), want_state=True)])
        runner.run([SimJob("y", qft(5).copy(), want_state=True)])
        assert runner.partitions_computed == 1
        assert runner.partition_hits == 1


# ---------------------------------------------------------------------------
# Regression: unknown manifest keys are rejected, with a suggestion
# ---------------------------------------------------------------------------


class TestManifestUnknownKeys:
    @pytest.mark.parametrize(
        "typo, suggestion",
        [
            ("schedles", "schedule"),
            ("stragety", "strategy"),
            ("worker", "workers"),
            ("bakend", "backend"),
        ],
    )
    def test_typo_names_nearest_option(self, typo, suggestion):
        with pytest.raises(ValueError) as excinfo:
            load_manifest({typo: "x", "jobs": []})
        message = str(excinfo.value)
        assert typo in message and suggestion in message

    def test_unrelated_key_lists_valid_options(self):
        with pytest.raises(ValueError) as excinfo:
            load_manifest({"zzzqqq": 1, "jobs": []})
        assert "valid keys" in str(excinfo.value)

    def test_known_keys_still_accepted(self):
        _, options = load_manifest(
            {"strategy": "DFS", "workers": 2, "jobs": []}
        )
        assert options == {"strategy": "DFS", "workers": 2}


# ---------------------------------------------------------------------------
# Sampling and expectation outputs
# ---------------------------------------------------------------------------


class TestSamplingOutputs:
    def test_sampled_distribution_close_to_exact(self):
        """Total-variation distance between the seeded empirical shot
        distribution and |amplitude|^2 stays within the N^(1/2) envelope."""
        qc = random_circuit(6, 40, seed=11)
        state = flat_state(qc)
        exact = np.abs(state) ** 2
        shots = 20000
        counts = sample_counts(state, shots, seed=123)
        empirical = np.zeros_like(exact)
        for idx, c in counts.items():
            empirical[idx] = c / shots
        tvd = 0.5 * float(np.sum(np.abs(empirical - exact)))
        # E[TVD] <~ sqrt(K / (2 pi N)); allow 4x headroom for the seed.
        bound = 4.0 * math.sqrt(exact.size / (2 * math.pi * shots))
        assert tvd < bound

    def test_sampling_is_seeded_and_deterministic(self):
        state = flat_state(qft(5))
        assert sample_counts(state, 500, seed=7) == sample_counts(
            state, 500, seed=7
        )
        assert sample_counts(state, 500, seed=7) != sample_counts(
            state, 500, seed=8
        )

    def test_batch_sampling_matches_direct_sampling(self):
        qc = qaoa(6, p=1)
        job = SimJob("s", qc, shots=256, seed=42)
        report = BatchRunner().run([job])
        assert report.results[0].counts == sample_counts(
            flat_state(qc), 256, seed=42
        )

    def test_counts_sum_to_shots(self):
        report = BatchRunner().run([SimJob("s", qft(5), shots=999)])
        assert sum(report.results[0].counts.values()) == 999


PAULI_1Q = {
    "I": np.eye(2, dtype=np.complex128),
    "X": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "Z": np.array([[1, 0], [0, -1]], dtype=np.complex128),
}


def dense_pauli(term: str) -> np.ndarray:
    """Full-space matrix of a Pauli string (qubit 0 = leftmost char).

    Little-endian indices put qubit 0 on the *last* kron factor.
    """
    out = np.eye(1, dtype=np.complex128)
    for c in term:  # qubit 0 first -> innermost factor last via prepend
        out = np.kron(PAULI_1Q[c], out)
    return out


class TestExpectationOutputs:
    @pytest.mark.parametrize("term", ["ZZIII", "XIYIZ", "XXXXX", "IIIII"])
    def test_matches_dense_matrix_reference(self, term):
        qc = random_circuit(5, 30, seed=9)
        state = flat_state(qc)
        expected = float(
            np.real(np.conj(state) @ (dense_pauli(term) @ state))
        )
        assert pauli_expectation(state, term, 5) == pytest.approx(
            expected, abs=1e-10
        )

    def test_batch_expectations_match_reference(self):
        qc = random_circuit(4, 25, seed=17)
        terms = ("ZZII", "XYIZ", "IIII")
        report = BatchRunner().run([SimJob("e", qc, observables=terms)])
        state = flat_state(qc)
        for value, term in zip(report.results[0].expectations, terms):
            expected = float(
                np.real(np.conj(state) @ (dense_pauli(term) @ state))
            )
            assert value == pytest.approx(expected, abs=1e-10)

    def test_energy_of_computational_basis_state(self):
        # <00|ZI|00> = <00|IZ|00> = 1.
        report = BatchRunner().run(
            [SimJob("z", QuantumCircuit(2).id(0), observables=("ZI", "IZ"))]
        )
        assert report.results[0].expectations == pytest.approx([1.0, 1.0])


# ---------------------------------------------------------------------------
# Manifests and the CLI
# ---------------------------------------------------------------------------


MANIFEST = {
    "schedule": "grouped",
    "jobs": [
        {
            "id": "gen",
            "circuit": {
                "generator": "qaoa",
                "qubits": 6,
                "args": {"p": 1, "gammas": [0.4], "betas": [0.6]},
            },
            "shots": 32,
            "seed": 3,
        },
        {
            "id": "inline",
            "circuit": {
                "qasm": "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n"
            },
            "observables": ["ZZ", {"0": "X", "1": "X"}],
        },
        {"id": "defaulted", "circuit": {"generator": "qft", "qubits": 4}},
    ],
}


class TestManifests:
    def test_load_manifest_from_dict(self):
        jobs, options = load_manifest(MANIFEST)
        assert options == {"schedule": "grouped"}
        assert [j.job_id for j in jobs] == ["gen", "inline", "defaulted"]
        assert jobs[0].shots == 32 and jobs[0].seed == 3
        assert jobs[1].observables == ("ZZ", {0: "X", 1: "X"})
        # No outputs named -> defaults to the final state.
        assert jobs[2].want_state is True

    def test_load_manifest_qasm_file_relative_to_manifest(self, tmp_path):
        (tmp_path / "bell.qasm").write_text(
            "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n"
        )
        manifest = {
            "jobs": [
                {"id": "f", "circuit": {"qasm_file": "bell.qasm"}},
            ]
        }
        path = tmp_path / "m.json"
        path.write_text(json.dumps(manifest))
        jobs, _ = load_manifest(str(path))
        assert len(jobs[0].circuit) == 2

    @pytest.mark.parametrize(
        "bad",
        [
            {"jobs": [{"id": "x", "circuit": {}}]},
            {"jobs": [{"id": "x", "circuit": {"generator": "qft"}}]},
            {"jobs": [{"id": "x", "circuit": {"qasm": "x", "generator": "qft", "qubits": 4}}]},
            {"not_jobs": []},
        ],
    )
    def test_malformed_manifests_rejected(self, bad):
        with pytest.raises(ValueError):
            load_manifest(bad)

    def test_results_roundtrip_json(self):
        jobs, options = load_manifest(MANIFEST)
        report = BatchRunner(**options).run(jobs)
        manifest = results_to_manifest(
            report.results, stats=vars(report.stats)
        )
        text = json.dumps(manifest)  # must be JSON-serialisable
        back = json.loads(text)
        assert [j["id"] for j in back["jobs"]] == ["gen", "inline", "defaulted"]
        assert sum(back["jobs"][0]["counts"].values()) == 32
        assert back["jobs"][1]["expectations"] == pytest.approx([1.0, 1.0])
        state = np.array(
            [complex(re, im) for re, im in back["jobs"][2]["state"]]
        )
        np.testing.assert_allclose(
            state, flat_state(qft(4)), atol=1e-10, rtol=0
        )
        assert back["stats"]["num_jobs"] == 3


class TestBatchCLI:
    def test_batch_subcommand_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        manifest_path = tmp_path / "jobs.json"
        manifest_path.write_text(json.dumps(MANIFEST))
        out_path = tmp_path / "results.json"
        rc = main(["batch", str(manifest_path), "-o", str(out_path)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "3 jobs" in printed and "partitions" in printed
        results = json.loads(out_path.read_text())
        assert len(results["jobs"]) == 3

    def test_batch_cli_flags_override_manifest(self, tmp_path, capsys):
        from repro.cli import main

        manifest_path = tmp_path / "jobs.json"
        manifest_path.write_text(json.dumps(MANIFEST))
        rc = main(
            ["batch", str(manifest_path), "--schedule", "fifo",
             "--strategy", "DFS", "--workers", "2"]
        )
        assert rc == 0
        assert "[fifo]" in capsys.readouterr().out
