"""GPU model / hybrid estimator / performance-profile / table tests."""

import math

import pytest

from repro.analysis.perfprofile import performance_profile
from repro.analysis.tables import fmt, geomean, render_table, write_csv
from repro.circuits.generators import qaoa
from repro.hybrid import (
    GPUModel,
    HyQuasChunkPartitioner,
    V100,
    estimate_hybrid,
    estimate_hyquas_baseline,
)
from repro.partition import DagPPartitioner, NaturalPartitioner


class TestGPUModel:
    def test_empty_part_is_free(self):
        assert V100.part_time(20, []) == 0.0

    def test_time_scales_with_gates(self):
        qc = qaoa(12, p=2)
        gates = list(qc)
        t1 = V100.part_time(12, gates[:50])
        t2 = V100.part_time(12, gates)
        assert t2 > t1

    def test_time_scales_with_width(self):
        qc = qaoa(12, p=2)
        gates = list(qc)
        assert V100.part_time(20, gates) > V100.part_time(14, gates)

    def test_fusion_reduces_time(self):
        qc = qaoa(12, p=2)
        gates = list(qc)
        fast = GPUModel(fusion=16.0).part_time(22, gates)
        slow = GPUModel(fusion=1.0).part_time(22, gates)
        assert fast < slow

    def test_paper_ballpark(self):
        # Table III: ~900 gates on 26 local qubits take 100-400 ms.
        qc = qaoa(24, p=6)
        t = V100.part_time(26, list(qc)[:900])
        assert 0.03 < t < 1.0


class TestHybridEstimates:
    def _circuit(self):
        qc = qaoa(14, p=4)
        qc.name = "qaoa_14"
        return qc

    def test_gates_conserved(self):
        qc = self._circuit()
        p = DagPPartitioner().partition(qc, 12)
        est = estimate_hybrid(qc, p, num_gpus=4)
        assert sum(r.gates for r in est.rows) == len(qc)
        assert est.num_parts == p.num_parts
        assert est.total_seconds == pytest.approx(
            est.gpu_seconds + est.comm_seconds
        )

    def test_dagp_comm_below_nat(self):
        qc = self._circuit()
        dagp = estimate_hybrid(qc, DagPPartitioner().partition(qc, 12), 4)
        nat = estimate_hybrid(qc, NaturalPartitioner().partition(qc, 12), 4)
        assert dagp.comm_seconds <= nat.comm_seconds

    def test_hybrid_dagp_beats_hyquas(self):
        # Table IV headline.
        qc = self._circuit()
        dagp = estimate_hybrid(qc, DagPPartitioner().partition(qc, 12), 4)
        hyquas = estimate_hyquas_baseline(qc, 4)
        assert dagp.total_seconds < hyquas.total_seconds

    def test_chunker_is_natural_scan(self):
        qc = self._circuit()
        chunks = HyQuasChunkPartitioner().partition(qc, 12)
        nat = NaturalPartitioner().partition(qc, 12)
        assert chunks.num_parts == nat.num_parts
        assert chunks.strategy == "HyQuas-chunk"

    def test_power_of_two_gpus_required(self):
        qc = self._circuit()
        p = DagPPartitioner().partition(qc, 12)
        with pytest.raises(ValueError):
            estimate_hybrid(qc, p, num_gpus=3)
        with pytest.raises(ValueError):
            estimate_hyquas_baseline(qc, 5)


class TestPerformanceProfile:
    COSTS = {
        "A": {"i1": 1.0, "i2": 2.0, "i3": 4.0},
        "B": {"i1": 2.0, "i2": 1.0, "i3": 1.0},
    }

    def test_rho_at_one_counts_wins(self):
        curves = performance_profile(self.COSTS)
        assert curves["A"].rho_at(1.0) == pytest.approx(1 / 3)
        assert curves["B"].rho_at(1.0) == pytest.approx(2 / 3)

    def test_rho_monotone_and_saturates(self):
        curves = performance_profile(self.COSTS)
        for c in curves.values():
            assert list(c.rho) == sorted(c.rho)
            assert c.rho[-1] == pytest.approx(1.0)

    def test_rho_at_between_points(self):
        curves = performance_profile(self.COSTS, thetas=[1.0, 2.0, 4.0])
        assert curves["A"].rho_at(2.5) == curves["A"].rho_at(2.0)

    def test_missing_instance_never_within(self):
        costs = {"A": {"i1": 1.0, "i2": 1.0}, "B": {"i1": 1.0}}
        curves = performance_profile(costs, thetas=[1.0, 10.0])
        assert curves["B"].rho[-1] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            performance_profile({"A": {}})
        with pytest.raises(ValueError):
            performance_profile({"A": {"i": -1.0}})


class TestTables:
    def test_render_plain(self):
        out = render_table(["a", "b"], [(1, 2.5), ("x", 3)], title="T")
        assert "T" in out and "a" in out
        lines = out.strip().split("\n")
        assert len(lines) == 5  # title, header, rule, 2 rows

    def test_render_markdown(self):
        out = render_table(["a"], [(1,)], markdown=True)
        assert out.splitlines()[1].startswith("|")

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [(1,)])

    def test_fmt(self):
        assert fmt(12345) == "12,345"
        assert fmt(0.5) == "0.5"
        assert fmt(1.23456e-9) == "1.235e-09"
        assert fmt(True) == "True"
        assert fmt("s") == "s"
        assert fmt(0.0) == "0"

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([2, 2, 2]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_write_csv(self, tmp_path):
        path = str(tmp_path / "sub" / "x.csv")
        write_csv(path, ["a", "b"], [(1, 2), (3, 4)])
        text = open(path).read()
        assert "a,b" in text and "3,4" in text
