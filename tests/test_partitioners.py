"""Strategy tests: Nat, DFS, dagP end-to-end on the benchmark suite."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import generators
from repro.circuits.circuit import QuantumCircuit
from repro.partition import (
    DagPPartitioner,
    DFSPartitioner,
    NaturalPartitioner,
    PartitionError,
    get_partitioner,
    validate_partition,
)
from repro.partition.dfs import random_dfs_topological_order
from repro.partition.natural import cutoff_assignment

from conftest import SUITE_SMALL, random_circuit

STRATS = ["Nat", "DFS", "dagP"]


class TestRegistry:
    def test_get_partitioner(self):
        assert get_partitioner("Nat").name == "Nat"
        assert get_partitioner("DFS", trials=3).trials == 3
        with pytest.raises(KeyError):
            get_partitioner("bogus")


class TestCutoff:
    def test_respects_limit(self):
        masks = [0b11, 0b110, 0b1100, 0b11000]
        a = cutoff_assignment(masks, range(4), limit=3)
        # Parts: {0,1} (qubits 0..2), then {2,3} (qubits 2..4).
        assert a == [0, 0, 1, 1]

    def test_single_wide_gate_rejected(self):
        with pytest.raises(PartitionError):
            cutoff_assignment([0b111], [0], limit=2)

    def test_one_part_when_everything_fits(self):
        masks = [0b1, 0b10, 0b11]
        assert cutoff_assignment(masks, range(3), limit=2) == [0, 0, 0]


class TestDFSOrder:
    def test_random_order_is_topological(self):
        import random

        qc = random_circuit(6, 40, seed=2)
        from repro.partition.base import gate_dependency_edges

        edges = gate_dependency_edges(qc)
        order = random_dfs_topological_order(len(qc), edges, random.Random(0))
        pos = {g: i for i, g in enumerate(order)}
        for u, v in edges:
            assert pos[u] < pos[v]

    def test_seed_reproducibility(self):
        qc = generators.build("qaoa", 8)
        a = DFSPartitioner(trials=4, seed=9).partition(qc, 5)
        b = DFSPartitioner(trials=4, seed=9).partition(qc, 5)
        assert a.assignment() == b.assignment()

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            DFSPartitioner(trials=0)


@pytest.mark.parametrize("strategy", STRATS)
@pytest.mark.parametrize("name,n", SUITE_SMALL)
class TestSuiteValidity:
    def test_valid_partition(self, strategy, name, n):
        qc = generators.build(name, n)
        limit = max(3, n - 3)
        p = get_partitioner(strategy).partition(qc, limit)
        assert validate_partition(qc, p).ok
        assert p.strategy == strategy
        assert p.limit == limit
        assert p.max_working_set() <= limit


class TestQuality:
    @pytest.mark.parametrize("name,n", SUITE_SMALL)
    def test_dfs_not_worse_than_nat(self, name, n):
        # The paper's motivation for DFS: it remedies Nat's weakness.
        qc = generators.build(name, n)
        limit = max(3, n // 2 + 1)
        nat = NaturalPartitioner().partition(qc, limit)
        dfs = DFSPartitioner(trials=8).partition(qc, limit)
        assert dfs.num_parts <= nat.num_parts

    @pytest.mark.parametrize("name,n", SUITE_SMALL)
    def test_dagp_competitive_with_dfs(self, name, n):
        # Fig 9a: dagP is best ~65% of the time and within 1.3x always;
        # as a hard invariant we allow at most +2 parts vs DFS.
        qc = generators.build(name, n)
        limit = max(3, n // 2 + 1)
        dfs = DFSPartitioner(trials=8).partition(qc, limit)
        dagp = DagPPartitioner().partition(qc, limit)
        assert dagp.num_parts <= dfs.num_parts + 2

    def test_everything_fits_gives_single_part(self):
        qc = generators.build("bv", 8)
        for strategy in STRATS:
            p = get_partitioner(strategy).partition(qc, 8)
            assert p.num_parts == 1

    def test_gate_wider_than_limit_rejected(self):
        qc = QuantumCircuit(4)
        qc.ccx(0, 1, 2)
        for strategy in STRATS:
            with pytest.raises(PartitionError):
                get_partitioner(strategy).partition(qc, 2)


class TestEdgeCases:
    def test_empty_circuit(self):
        qc = QuantumCircuit(3)
        for strategy in STRATS:
            p = get_partitioner(strategy).partition(qc, 2)
            assert p.num_parts == 0

    def test_single_gate(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 2)
        for strategy in STRATS:
            p = get_partitioner(strategy).partition(qc, 2)
            assert p.num_parts == 1
            assert p.parts[0].qubits == (0, 2)

    def test_dagp_invalid_limit(self):
        with pytest.raises(ValueError):
            DagPPartitioner().partition(QuantumCircuit(2), 0)

    def test_dagp_no_merge_option(self):
        qc = generators.build("ising", 8)
        with_merge = DagPPartitioner(do_merge=True).partition(qc, 5)
        without = DagPPartitioner(do_merge=False).partition(qc, 5)
        assert with_merge.num_parts <= without.num_parts
        assert validate_partition(qc, without).ok


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 9999), limit=st.integers(3, 6))
def test_property_all_strategies_produce_valid_partitions(seed, limit):
    qc = random_circuit(7, 30, seed=seed)
    for strategy in STRATS:
        p = get_partitioner(strategy).partition(qc, limit)
        validate_partition(qc, p, raise_on_error=True)
