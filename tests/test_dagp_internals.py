"""dagP phase-level tests: subdag, coarsening, bisection, refinement, GGG."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import generators
from repro.circuits.circuit import QuantumCircuit
from repro.partition.dagp.bisect import bisection_cost, initial_bisection
from repro.partition.dagp.coarsen import coarsen, coarsen_once
from repro.partition.dagp.ggg import greedy_grow_assignment
from repro.partition.dagp.refine import RefineState, refine_bisection
from repro.partition.dagp.subdag import SubDag

from conftest import random_circuit


def make_sub(name="ising", n=8):
    return SubDag.from_circuit(generators.build(name, n))


class TestSubDag:
    def test_from_circuit_counts(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).cx(1, 2)
        sub = SubDag.from_circuit(qc)
        assert sub.num_nodes == 3
        assert sub.total_weight() == 3
        assert sub.working_set_size() == 3
        assert sub.succ[0] == [1]
        assert sub.succ[1] == [2]

    def test_edges_deduplicated(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1).cx(0, 1)  # two shared qubits -> one edge
        sub = SubDag.from_circuit(qc)
        assert sub.succ[0] == [1]

    def test_induced_subset(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).cx(1, 2).h(2)
        sub = SubDag.from_circuit(qc, gates=[1, 2])
        assert sub.num_nodes == 2
        assert sub.gate_ids == [[1], [2]]
        assert sub.succ[0] == [1]

    def test_topological_order_with_priority(self):
        qc = QuantumCircuit(4)
        qc.h(0).h(1).h(2).h(3)  # independent gates
        sub = SubDag.from_circuit(qc)
        order = sub.topological_order(priority=[3, 2, 1, 0])
        assert order == [3, 2, 1, 0]

    def test_contract(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).cx(1, 2)
        sub = SubDag.from_circuit(qc)
        coarse = sub.contract([0, 0, 1], 2)
        assert coarse.num_nodes == 2
        assert coarse.weight == [2, 1]
        assert coarse.qmask[0] == 0b011
        assert coarse.succ[0] == [1]
        assert sorted(coarse.gate_ids[0]) == [0, 1]


class TestCoarsen:
    @pytest.mark.parametrize("name", ["bv", "ising", "qaoa", "qft"])
    def test_coarse_graphs_stay_acyclic(self, name):
        sub = make_sub(name)
        graphs, maps = coarsen(sub, target_nodes=4)
        for g in graphs:
            assert g.is_acyclic()
        assert len(maps) == len(graphs) - 1

    def test_gates_conserved_through_levels(self):
        sub = make_sub("qaoa")
        graphs, _ = coarsen(sub, target_nodes=8)
        total = sum(len(g) for g in graphs[0].gate_ids)
        for g in graphs[1:]:
            assert sum(len(ids) for ids in g.gate_ids) == total
            assert g.total_weight() == graphs[0].total_weight()

    def test_single_pass_reduces_nodes(self):
        sub = make_sub("ising")
        coarse, mapping = coarsen_once(
            sub, random.Random(0), max_cluster_weight=100, max_cluster_qubits=64
        )
        assert coarse.num_nodes < sub.num_nodes
        assert len(mapping) == sub.num_nodes
        assert max(mapping) == coarse.num_nodes - 1

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_property_contraction_safety(self, seed):
        qc = random_circuit(6, 25, seed=seed)
        sub = SubDag.from_circuit(qc)
        graphs, _ = coarsen(sub, target_nodes=3, seed=seed)
        assert all(g.is_acyclic() for g in graphs)


class TestBisect:
    @pytest.mark.parametrize("name", ["bv", "ising", "qaoa", "qft", "adder"])
    def test_bisection_is_acyclic_split(self, name):
        sub = make_sub(name)
        labels = initial_bisection(sub)
        assert set(labels) == {0, 1}
        # No edge may point 1 -> 0.
        for v in range(sub.num_nodes):
            if labels[v] == 1:
                for w in sub.succ[v]:
                    assert labels[w] == 1

    def test_cost_components(self):
        qc = QuantumCircuit(4)
        qc.h(0).h(1).h(2).h(3)
        sub = SubDag.from_circuit(qc)
        cost = bisection_cost(sub, [0, 0, 1, 1])
        assert cost == (2, 4, 0)

    def test_too_small_to_bisect(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        sub = SubDag.from_circuit(qc)
        with pytest.raises(ValueError):
            initial_bisection(sub)


class TestRefine:
    def _setup(self, name="ising", n=8):
        sub = make_sub(name, n)
        labels = initial_bisection(sub)
        return sub, labels

    def test_refinement_never_worsens_cost(self):
        sub, labels = self._setup()
        before = bisection_cost(sub, list(labels))
        refined = refine_bisection(sub, list(labels))
        after = bisection_cost(sub, refined)
        assert after <= before

    def test_refinement_keeps_acyclicity(self):
        sub, labels = self._setup("qaoa")
        refined = refine_bisection(sub, list(labels))
        for v in range(sub.num_nodes):
            if refined[v] == 1:
                for w in sub.succ[v]:
                    assert refined[w] == 1

    def test_refine_state_incremental_bookkeeping(self):
        sub, labels = self._setup()
        state = RefineState(sub, list(labels))
        # Apply a few legal moves; cost prediction must match reality.
        moved = 0
        for v in range(sub.num_nodes):
            if state.legal(v):
                predicted = state.cost_after_move(v)
                state.apply(v)
                assert state.cost() == predicted
                moved += 1
                if moved >= 5:
                    break
        assert moved > 0

    def test_sides_never_emptied(self):
        sub, labels = self._setup("bv")
        refined = refine_bisection(sub, list(labels), max_passes=20)
        assert 0 < sum(refined) < len(refined)


class TestGGG:
    @pytest.mark.parametrize("name", ["bv", "ising", "qft", "qaoa"])
    def test_assignment_is_topological_and_bounded(self, name):
        sub = make_sub(name)
        limit = 5
        a = greedy_grow_assignment(sub, limit)
        assert all(p >= 0 for p in a)
        # Part ids must be non-decreasing along edges.
        for v in range(sub.num_nodes):
            for w in sub.succ[v]:
                assert a[v] <= a[w]
        # Working sets bounded.
        masks = {}
        for v, p in enumerate(a):
            masks[p] = masks.get(p, 0) | sub.qmask[v]
        assert all(m.bit_count() <= limit for m in masks.values())

    def test_single_part_when_fits(self):
        sub = make_sub("bv", 6)
        a = greedy_grow_assignment(sub, 6)
        assert set(a) == {0}
