"""Socket transport tests: the dry-run traffic model as correctness oracle.

The recording transport (all ranks in one process) is the historical
behaviour every model number in the reproduction is pinned against; the
socket transport runs one OS process (here: thread, via ``run_spmd``)
per rank over a real TCP mesh.  These tests hold the two together:

* differential — SPMD runs produce ``to_full()`` *bit-identical* to the
  recording transport, across backends and rank counts;
* traffic oracle — every per-rank :class:`ExchangeRecord` equals the
  closed-form :func:`exchange_rank_stats`, whose rank-sum equals the
  global :func:`exchange_step_stats` already pinned by the dry-run
  suite;
* the no-op-remap regression — zero-traffic exchanges record no step,
  in the recording transport, the analytic state and the model alike;
* fault injection — dead peers, mid-frame disconnects and truncated
  frames surface as clean :class:`TransportError`\\ s, never hangs.
"""

import os
import socket
import struct
import subprocess
import sys
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import generators
from repro.dist import (
    DistributedStateVector,
    HiSVSimEngine,
    LayoutOnlyState,
    engine_exchange_layouts,
    exchange_rank_stats,
    exchange_step_stats,
)
from repro.dist.transport import (
    AMP_BYTES,
    ExchangeRecord,
    RecordingTransport,
    SocketTransport,
    TransportError,
    dist_env_defaults,
    run_spmd,
)
from repro.partition import get_partitioner
from repro.runtime.comm import SimComm
from repro.sv.layout import QubitLayout
from repro.sv.simulator import StateVectorSimulator


@st.composite
def layout_pairs(draw, n):
    rnd = draw(st.randoms(use_true_random=False))
    old = list(range(n))
    new = list(range(n))
    rnd.shuffle(old)
    rnd.shuffle(new)
    return QubitLayout(old), QubitLayout(new)


def spmd_engine_run(num_ranks, name, qubits, strategy="dagP", limit=None):
    """Run one circuit SPMD over sockets; returns (fulls, transports)."""
    qc = generators.build(name, qubits)
    partition = get_partitioner(strategy).partition(
        qc, limit or max(3, qubits - 3)
    )
    transports = [None] * num_ranks

    def worker(rank, transport):
        transports[rank] = transport
        comm = SimComm(num_ranks, transport=transport)
        engine = HiSVSimEngine(num_ranks=num_ranks)
        state, report = engine.run(qc, partition, comm=comm)
        return state.to_full(), report

    results = run_spmd(num_ranks, worker)
    fulls = [r[0] for r in results]
    return qc, partition, fulls, transports, [r[1] for r in results]


class TestRankStatsModel:
    """exchange_rank_stats against the pinned global model."""

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_rank_sum_matches_global_model(self, data):
        n = data.draw(st.integers(min_value=3, max_value=7))
        local_bits = data.draw(st.integers(min_value=1, max_value=n - 1))
        old, new = data.draw(layout_pairs(n))
        total_bytes, total_msgs, _, _ = exchange_step_stats(
            old, new, local_bits
        )
        ranks = 1 << (n - local_bits)
        sent_b = sent_m = 0
        for r in range(ranks):
            sb, sm, rb, rm = exchange_rank_stats(old, new, local_bits, r)
            # A bit permutation is volume-symmetric per rank.
            assert (sb, sm) == (rb, rm)
            sent_b += sb
            sent_m += sm
        assert sent_b == total_bytes
        assert sent_m == total_msgs

    def test_identity_costs_nothing_per_rank(self):
        lay = QubitLayout.identity(5)
        for r in range(8):
            assert exchange_rank_stats(lay, lay, 2, r) == (0, 0, 0, 0)

    def test_local_shuffle_costs_nothing_per_rank(self):
        old = QubitLayout.identity(5)
        new = QubitLayout([1, 0, 2, 3, 4])  # local-only swap at l=3
        for r in range(4):
            assert exchange_rank_stats(old, new, 3, r) == (0, 0, 0, 0)

    def test_full_process_swap(self):
        # Swapping a local and a process qubit: every rank ships half its
        # shard to exactly one partner.
        old = QubitLayout.identity(4)
        new = QubitLayout([2, 1, 0, 3])
        for r in range(4):
            stats = exchange_rank_stats(old, new, 2, r)
            assert stats == (AMP_BYTES * 2, 1, AMP_BYTES * 2, 1)


class TestNoOpRemapRegression:
    """Satellite bugfix: no-op remaps must cost nothing everywhere."""

    def test_recording_transport_skips_zero_step(self):
        comm = SimComm(4)
        dsv = DistributedStateVector.zero(4, comm)
        dsv.remap(QubitLayout([1, 0, 2, 3]))  # local-only swap
        assert comm.stats.steps == 0
        assert comm.stats.total_bytes == 0
        dsv.remap(QubitLayout([2, 1, 0, 3]))  # crosses the rank boundary
        assert comm.stats.steps == 1
        assert comm.stats.total_bytes > 0

    def test_analytic_state_agrees_with_recording(self):
        layouts = [
            QubitLayout([1, 0, 2, 3]),  # free
            QubitLayout([2, 1, 0, 3]),  # paid
            QubitLayout([2, 1, 0, 3]),  # identity: free
            QubitLayout([3, 1, 0, 2]),  # paid
        ]
        real_comm, dry_comm = SimComm(4), SimComm(4)
        dsv = DistributedStateVector.zero(4, real_comm)
        dry = LayoutOnlyState(4, dry_comm)
        for lay in layouts:
            dsv.remap(lay)
            dry.remap(lay)
        assert real_comm.stats.steps == dry_comm.stats.steps == 2
        assert real_comm.stats.total_bytes == dry_comm.stats.total_bytes
        assert real_comm.stats.total_msgs == dry_comm.stats.total_msgs

    def test_socket_transport_records_but_does_not_step(self):
        # Under SPMD every exchange() call still runs a frame round (the
        # peers cannot know it is globally free), but a zero-traffic one
        # contributes no CommStats step — same accounting as recording.
        def worker(rank, transport):
            comm = SimComm(2, transport=transport)
            dsv = DistributedStateVector.zero(3, comm)
            dsv.remap(QubitLayout([1, 0, 2]))  # local-only: free
            dsv.remap(QubitLayout([2, 1, 0]))  # paid
            return comm.stats.steps, len(transport.records)

        for steps, records in run_spmd(2, worker):
            assert steps == 1
            assert records == 2


class TestSocketDifferential:
    """SPMD socket runs against the recording transport, bit for bit."""

    @pytest.mark.parametrize("num_ranks", [2, 4])
    @pytest.mark.parametrize("name,qubits", [("qft", 6), ("qaoa", 7)])
    def test_bit_identical_to_recording(self, num_ranks, name, qubits):
        qc, partition, fulls, transports, _ = spmd_engine_run(
            num_ranks, name, qubits
        )
        state, _ = HiSVSimEngine(num_ranks=num_ranks).run(qc, partition)
        reference = state.to_full()
        for rank, full in enumerate(fulls):
            assert np.array_equal(
                full.view(np.uint8), reference.view(np.uint8)
            ), f"rank {rank} diverged"

    @pytest.mark.parametrize("backend", ["serial", "threaded"])
    def test_backend_matrix(self, backend):
        qc = generators.build("qft", 6)
        partition = get_partitioner("dagP").partition(qc, 3)

        def worker(rank, transport):
            comm = SimComm(2, transport=transport)
            engine = HiSVSimEngine(num_ranks=2, backend=backend, threads=2)
            state, _ = engine.run(qc, partition, comm=comm)
            return state.to_full()

        state, _ = HiSVSimEngine(num_ranks=2, backend="serial").run(
            qc, partition
        )
        reference = state.to_full()
        for full in run_spmd(2, worker):
            assert np.array_equal(
                full.view(np.uint8), reference.view(np.uint8)
            )

    def test_matches_flat_simulator(self):
        qc, _, fulls, _, _ = spmd_engine_run(4, "adder", 6)
        sim = StateVectorSimulator(6)
        sim.run(qc)
        assert np.allclose(fulls[0], sim.state, atol=1e-10)

    def test_reports_agree_with_recording(self):
        qc, partition, _, _, reports = spmd_engine_run(2, "qft", 6)
        _, reference = HiSVSimEngine(num_ranks=2).run(qc, partition)
        for report in reports:
            assert report.comm.steps == reference.comm.steps
            # Rank totals are the rank's own traffic; their sum over the
            # symmetric volume equals the recording global.
        total = sum(r.comm.total_bytes for r in reports)
        # Each rank counts its sends; recording counts global volume.
        assert total == reference.comm.total_bytes


class TestTrafficOracle:
    """Observed wire records against the closed-form per-rank model."""

    @pytest.mark.parametrize("num_ranks", [2, 4])
    def test_records_match_model_exactly(self, num_ranks):
        name, qubits = "qft", 6
        qc, partition, _, transports, _ = spmd_engine_run(
            num_ranks, name, qubits
        )
        expected = engine_exchange_layouts(partition, qubits, num_ranks)
        local_bits = qubits - (num_ranks.bit_length() - 1)
        for rank, transport in enumerate(transports):
            assert len(transport.records) == len(expected)
            for record, (old, new) in zip(transport.records, expected):
                model = exchange_rank_stats(old, new, local_bits, rank)
                observed = (
                    record.sent_bytes,
                    record.sent_msgs,
                    record.recv_bytes,
                    record.recv_msgs,
                )
                assert observed == model

    def test_payload_bytes_are_pure_amplitude_volume(self):
        # wire_bytes carries framing + offsets; the modelled volume is
        # amplitudes only, 16 bytes each, so they must differ whenever
        # traffic flowed.
        _, _, _, transports, _ = spmd_engine_run(2, "qft", 6)
        for transport in transports:
            for record in transport.records:
                assert record.sent_bytes % AMP_BYTES == 0
                if record.sent_msgs:
                    assert record.wire_bytes > record.sent_bytes


class TestDistWorkerCLI:
    """Two real OS processes through `repro dist-worker`."""

    def test_two_process_run(self, tmp_path):
        port = _free_port()
        env = dict(os.environ, PYTHONPATH=_src_path())
        out = tmp_path / "rank0.npy"
        procs = []
        for rank in range(2):
            cmd = [
                sys.executable, "-m", "repro.cli", "dist-worker",
                "--rank", str(rank), "--ranks", "2",
                "--rendezvous", f"127.0.0.1:{port}",
                "--circuit", "qft", "--qubits", "6",
            ]
            if rank == 0:
                cmd += ["--out", str(out)]
            procs.append(subprocess.Popen(
                cmd, env=env,
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            ))
        for rank, proc in enumerate(procs):
            stdout, stderr = proc.communicate(timeout=120)
            assert proc.returncode == 0, (rank, stdout, stderr)
            assert '"verified": true' in stdout

        qc = generators.build("qft", 6)
        partition = get_partitioner("dagP").partition(qc, 3)
        state, _ = HiSVSimEngine(num_ranks=2).run(qc, partition)
        got = np.load(out)
        assert np.array_equal(
            got.view(np.uint8), state.to_full().view(np.uint8)
        )

    def test_bad_rank_rejected(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "dist-worker",
             "--rank", "5", "--ranks", "2", "--circuit", "qft",
             "--qubits", "4"],
            env=dict(os.environ, PYTHONPATH=_src_path()),
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 2
        assert "out of range" in result.stdout


class TestFaultInjection:
    """Dropped peers and mangled frames fail cleanly, never hang."""

    def test_connect_to_dead_port_bounded_retry(self):
        port = _free_port()  # nothing listens here
        with pytest.raises(TransportError) as excinfo:
            SocketTransport.connect(
                1, 2, ("127.0.0.1", port),
                timeout=0.5, retries=2, backoff=0.01,
            )
        assert "3 attempts" in str(excinfo.value)

    def test_peer_closes_mid_frame(self):
        # A fake rank 0 accepts the rendezvous registration, starts the
        # address-map frame, then slams the connection shut after half
        # the length prefix — the worker must see "closed mid-frame",
        # not hang waiting for the rest.
        def fake_rank0(listener, failure):
            try:
                conn, _ = listener.accept()
                conn.settimeout(5.0)
                (length,) = struct.unpack(">Q", _read(conn, 8))
                _read(conn, length)  # the (rank, port) registration
                conn.sendall(b"\x00\x00\x00\x00")  # half a length prefix
                conn.close()
            except Exception as exc:  # pragma: no cover - debug aid
                failure.append(exc)

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        failure = []
        thread = threading.Thread(
            target=fake_rank0, args=(listener, failure), daemon=True
        )
        thread.start()
        try:
            with pytest.raises(TransportError) as excinfo:
                SocketTransport.connect(
                    1, 2, listener.getsockname(),
                    timeout=1.0, retries=1, backoff=0.01,
                )
            assert "closed mid-" in str(excinfo.value)
        finally:
            listener.close()
            thread.join(5.0)
        assert not failure

    def test_truncated_frame_detected(self):
        # Hand-build a 2-rank mesh, then have rank 1 send a frame whose
        # header promises more bytes than the payload delivers.
        def worker(rank, transport):
            if rank == 0:
                shards = np.zeros((1, 4), dtype=np.complex128)
                shards[0, 0] = 1.0
                dest_rank = np.full((1, 4), 1, dtype=np.int64)
                dest_off = np.arange(4, dtype=np.int64).reshape(1, 4)
                with pytest.raises(TransportError):
                    transport.exchange(
                        shards, dest_rank, dest_off, SimComm(2).stats
                    )
                return "detected"
            # Rank 1 bypasses exchange(): writes a corrupt frame by hand.
            peer = transport._peers[0]
            header = struct.pack(">Q", 8 + 24)  # promises one entry
            peer.sendall(header + struct.pack(">Q", 1))  # ...then stops
            peer.shutdown(socket.SHUT_WR)
            return "sent"

        results = run_spmd(2, worker, timeout=30.0)
        assert results[0] == "detected"

    def test_peer_vanishes_mid_exchange(self):
        # A peer that exits without ever sending its frame: its close()
        # reaches the survivor as a clean per-rank TransportError, not a
        # hang and not corrupted state.
        def worker(rank, transport):
            if rank == 0:
                shards = np.zeros((1, 2), dtype=np.complex128)
                dest_rank = np.zeros((1, 2), dtype=np.int64)
                dest_off = np.arange(2, dtype=np.int64).reshape(1, 2)
                with pytest.raises(TransportError):
                    transport.exchange(
                        shards, dest_rank, dest_off, SimComm(2).stats
                    )
                return "failed-clean"
            return "vanished"  # never participates in the exchange

        results = run_spmd(2, worker, timeout=30.0)
        assert results[0] == "failed-clean"

    def test_close_is_idempotent(self):
        def worker(rank, transport):
            transport.close()
            transport.close()
            return True

        assert run_spmd(2, worker) == [True, True]


class TestEnvDefaults:
    def test_defaults_without_env(self, monkeypatch):
        for key in ("REPRO_DIST_HOST", "REPRO_DIST_PORT",
                    "REPRO_DIST_TIMEOUT", "REPRO_DIST_RETRIES",
                    "REPRO_DIST_BACKOFF", "REPRO_DIST_TRANSPORT"):
            monkeypatch.delenv(key, raising=False)
        env = dist_env_defaults()
        assert env["host"] == "127.0.0.1"
        assert env["port"] == 29500
        assert env["timeout"] == 30.0
        assert env["retries"] == 5
        assert env["transport"] == "socket"

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIST_PORT", "12345")
        monkeypatch.setenv("REPRO_DIST_RETRIES", "1")
        monkeypatch.setenv("REPRO_DIST_TRANSPORT", "recording")
        env = dist_env_defaults()
        assert env["port"] == 12345
        assert env["retries"] == 1
        assert env["transport"] == "recording"


class TestRecordingTransport:
    def test_is_the_default_seam(self):
        comm = SimComm(2)
        assert isinstance(comm.transport, RecordingTransport)
        assert comm.rank is None

    def test_rejects_rank_mismatch(self):
        with pytest.raises(ValueError):
            SimComm(4, transport=RecordingTransport(2))

    def test_exchange_record_is_frozen(self):
        record = ExchangeRecord(16, 1, 16, 1, 40)
        with pytest.raises(AttributeError):
            record.sent_bytes = 0


def _free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _src_path() -> str:
    here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src = os.path.join(here, "src")
    existing = os.environ.get("PYTHONPATH", "")
    return f"{src}{os.pathsep}{existing}" if existing else src


def _read(conn: socket.socket, count: int) -> bytes:
    data = b""
    while len(data) < count:
        chunk = conn.recv(count - len(data))
        if not chunk:
            raise ConnectionError("peer closed")
        data += chunk
    return data
