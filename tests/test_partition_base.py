"""Partition framework tests: normalisation, validation, dependency edges."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.partition.base import (
    Part,
    Partition,
    PartitionError,
    gate_dependency_edges,
)
from repro.partition.validate import validate_partition


def linear_circuit():
    qc = QuantumCircuit(3)
    qc.h(0).cx(0, 1).cx(1, 2).h(2)
    return qc


class TestDependencyEdges:
    def test_linear(self):
        edges = gate_dependency_edges(linear_circuit())
        assert (0, 1) in edges  # h(0) -> cx(0,1)
        assert (1, 2) in edges  # cx(0,1) -> cx(1,2)
        assert (2, 3) in edges  # cx(1,2) -> h(2)

    def test_parallel_gates_no_edges(self):
        qc = QuantumCircuit(4)
        qc.h(0).h(1).h(2).h(3)
        assert gate_dependency_edges(qc) == []

    def test_multi_qubit_edges(self):
        qc = QuantumCircuit(3)
        qc.ccx(0, 1, 2)
        qc.h(1)
        edges = gate_dependency_edges(qc)
        assert edges == [(0, 1)]


class TestFromAssignment:
    def test_simple_split(self):
        qc = linear_circuit()
        p = Partition.from_assignment(qc, [0, 0, 1, 1], limit=2, strategy="t")
        assert p.num_parts == 2
        assert p.parts[0].gate_indices == (0, 1)
        assert p.parts[0].qubits == (0, 1)
        assert p.parts[1].qubits == (1, 2)

    def test_parts_renumbered_topologically(self):
        qc = linear_circuit()
        # Raw ids reversed: part 7 before part 3 in execution order.
        p = Partition.from_assignment(qc, [7, 7, 3, 3], limit=2, strategy="t")
        assert p.parts[0].gate_indices == (0, 1)

    def test_cycle_rejected(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).h(0)  # gate2 depends on gate1 depends on gate0
        with pytest.raises(PartitionError):
            # gates 0,2 in part A; gate 1 in part B -> A->B->A cycle.
            Partition.from_assignment(qc, [0, 1, 0], limit=2, strategy="t")

    def test_limit_enforced(self):
        qc = linear_circuit()
        with pytest.raises(PartitionError):
            Partition.from_assignment(qc, [0, 0, 0, 0], limit=2, strategy="t")
        # Same assignment passes without enforcement.
        p = Partition.from_assignment(
            qc, [0, 0, 0, 0], limit=2, strategy="t", enforce_limit=False
        )
        assert p.num_parts == 1

    def test_unassigned_rejected(self):
        with pytest.raises(PartitionError):
            Partition.from_assignment(linear_circuit(), [0, 0, -1, 0], 3, "t")

    def test_length_mismatch(self):
        with pytest.raises(PartitionError):
            Partition.from_assignment(linear_circuit(), [0, 0], 3, "t")

    def test_empty_circuit(self):
        qc = QuantumCircuit(2)
        p = Partition.from_assignment(qc, [], 2, "t")
        assert p.num_parts == 0
        assert p.max_working_set() == 0


class TestPartitionAccessors:
    def test_assignment_roundtrip(self):
        qc = linear_circuit()
        p = Partition.from_assignment(qc, [0, 0, 1, 1], 2, "t")
        assert p.assignment() == [0, 0, 1, 1]
        assert p.gates_per_part() == [2, 2]
        assert p.max_working_set() == 2

    def test_part_properties(self):
        part = Part(gate_indices=(1, 5), qubits=(0, 3))
        assert part.num_gates == 2
        assert part.working_set_size == 2
        assert part.qmask == 0b1001


class TestValidator:
    def _valid(self):
        qc = linear_circuit()
        return qc, Partition.from_assignment(qc, [0, 0, 1, 1], 2, "t")

    def test_valid_partition_passes(self):
        qc, p = self._valid()
        assert validate_partition(qc, p).ok

    def test_detects_duplicate_gate(self):
        qc, p = self._valid()
        bad = Partition(
            p.num_qubits,
            p.num_gates,
            p.limit,
            p.strategy,
            (Part((0, 1), (0, 1)), Part((1, 2, 3), (0, 1, 2))),
        )
        rep = validate_partition(qc, bad)
        assert not rep.ok

    def test_detects_missing_gate(self):
        qc, p = self._valid()
        bad = Partition(
            p.num_qubits, p.num_gates, p.limit, p.strategy, (Part((0, 1), (0, 1)),)
        )
        rep = validate_partition(qc, bad)
        assert any("uncovered" in m for m in rep.problems)

    def test_detects_limit_violation(self):
        qc = linear_circuit()
        p = Partition.from_assignment(qc, [0, 0, 0, 0], 3, "t")
        shrunk = Partition(p.num_qubits, p.num_gates, 2, p.strategy, p.parts)
        rep = validate_partition(qc, shrunk)
        assert any("exceeds limit" in m for m in rep.problems)

    def test_detects_order_violation(self):
        qc = linear_circuit()
        # Manually build parts in the wrong execution order.
        bad = Partition(
            3, 4, 2, "t", (Part((2, 3), (1, 2)), Part((0, 1), (0, 1)))
        )
        rep = validate_partition(qc, bad)
        assert any("dependency violation" in m for m in rep.problems)

    def test_detects_wrong_qubit_set(self):
        qc = linear_circuit()
        bad = Partition(
            3, 4, 2, "t", (Part((0, 1), (0, 2)), Part((2, 3), (1, 2)))
        )
        rep = validate_partition(qc, bad)
        assert any("qubit set mismatch" in m for m in rep.problems)

    def test_raise_on_error(self):
        qc, p = self._valid()
        shrunk = Partition(p.num_qubits, p.num_gates, 1, p.strategy, p.parts)
        with pytest.raises(AssertionError):
            validate_partition(qc, shrunk, raise_on_error=True)
