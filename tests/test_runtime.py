"""Machine model, SimComm and metrics tests."""

import numpy as np
import pytest

from repro.runtime.comm import SimComm
from repro.runtime.machine import FRONTERA_LIKE, WORKSTATION_LIKE, MachineModel
from repro.runtime.metrics import CommStats, ComputeStats, RunReport


class TestMachineModel:
    def test_bandwidth_level_selection(self):
        m = MachineModel()
        assert m.bandwidth_for_working_set(1024) == m.l1_bw
        assert m.bandwidth_for_working_set(512 * 1024) == m.l2_bw
        assert m.bandwidth_for_working_set(16 * 1024 * 1024) == m.l3_bw
        assert m.bandwidth_for_working_set(1 << 40) == m.dram_bw

    def test_bandwidths_monotone(self):
        m = MachineModel()
        assert m.l1_bw >= m.l2_bw >= m.l3_bw >= m.dram_bw

    def test_compute_time_roofline(self):
        m = MachineModel()
        # Memory-bound: huge bytes, tiny flops.
        t_mem = m.compute_time(1.0, 1e9, 1 << 40)
        assert t_mem == pytest.approx(1e9 / m.dram_bw)
        # Compute-bound: huge flops, tiny bytes.
        t_flop = m.compute_time(1e12, 1.0, 1024)
        assert t_flop == pytest.approx(1e12 / m.flops)

    def test_thread_scaling_close_to_linear(self):
        m = MachineModel(thread_efficiency=0.95)
        s2 = m.with_threads(2).thread_scale()
        s16 = m.with_threads(16).thread_scale()
        assert 1.8 <= s2 <= 2.0
        assert 10 <= s16 <= 16
        assert m.with_threads(1).thread_scale() == 1.0

    def test_exchange_time_alpha_beta(self):
        m = MachineModel(net_alpha=1e-6, net_beta=1e9, congestion=0.0)
        t = m.exchange_time(1e9, 10)
        assert t == pytest.approx(1e-5 + 1.0)
        assert m.exchange_time(0, 0) == 0.0

    def test_congestion_slows_collectives(self):
        m = MachineModel(congestion=0.5)
        t4 = m.exchange_time(1e9, 1, num_ranks=4)
        t256 = m.exchange_time(1e9, 1, num_ranks=256)
        assert t256 > t4 > m.exchange_time(1e9, 1, num_ranks=1)

    def test_exchange_time_linear_in_accumulated_steps(self):
        # Summing per-step maxima == one call on the sums (engine relies
        # on this to compute comm time once at the end).
        m = MachineModel()
        steps = [(1e6, 3), (2e6, 5), (5e5, 1)]
        total = sum(m.exchange_time(b, n, 8) for b, n in steps)
        bulk = m.exchange_time(
            sum(b for b, _ in steps), sum(n for _, n in steps), 8
        )
        assert total == pytest.approx(bulk)

    def test_profiles_exist(self):
        assert FRONTERA_LIKE.net_beta > 0
        assert WORKSTATION_LIKE.dram_bw < FRONTERA_LIKE.dram_bw * 2


class TestSimComm:
    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            SimComm(3)
        with pytest.raises(ValueError):
            SimComm(0)

    def test_identity_permutation_no_traffic(self):
        comm = SimComm(4)
        shards = (np.arange(16, dtype=np.complex128)).reshape(4, 4)
        dest_rank = np.repeat(np.arange(4), 4).reshape(4, 4)
        dest_off = np.tile(np.arange(4), (4, 1))
        out = comm.alltoall_permute(shards.copy(), dest_rank, dest_off)
        assert np.array_equal(out, shards)
        assert comm.stats.total_bytes == 0
        # A plan with no cross-rank movement is free: no step recorded
        # (the closed-form model says the same exchange costs nothing).
        assert comm.stats.steps == 0

    def test_full_rotation_traffic(self):
        # Every rank ships its whole shard to rank+1 (mod R).
        R, L = 4, 8
        comm = SimComm(R)
        shards = np.arange(R * L, dtype=np.complex128).reshape(R, L)
        dest_rank = np.tile(((np.arange(R) + 1) % R)[:, None], (1, L))
        dest_off = np.tile(np.arange(L), (R, 1))
        out = comm.alltoall_permute(shards, dest_rank, dest_off)
        assert np.array_equal(out[1], shards[0])
        assert np.array_equal(out[0], shards[3])
        st = comm.stats
        assert st.total_bytes == R * L * 16
        assert st.total_msgs == R
        assert st.max_bytes_per_rank == L * 16
        assert st.max_msgs_per_rank == 1

    def test_plan_shape_mismatch(self):
        comm = SimComm(2)
        shards = np.zeros((2, 4), dtype=np.complex128)
        with pytest.raises(ValueError):
            comm.alltoall_permute(shards, np.zeros((2, 3)), np.zeros((2, 4)))

    def test_reset_stats(self):
        comm = SimComm(2)
        comm.pairwise_exchange_volume(100)
        st = comm.reset_stats()
        assert st.total_bytes == 200
        assert comm.stats.total_bytes == 0


class TestMetrics:
    def test_commstats_accumulation(self):
        st = CommStats()
        st.add_step(100, 2, 60, 1)
        st.add_step(50, 1, 50, 1)
        assert st.total_bytes == 150
        assert st.steps == 2
        assert st.max_bytes_per_rank == 110  # summed per-step maxima

    def test_merge(self):
        a, b = CommStats(), CommStats()
        a.add_step(10, 1, 10, 1)
        b.add_step(20, 2, 20, 2)
        a.merge(b)
        assert a.total_bytes == 30
        assert a.max_msgs_per_rank == 3
        c = ComputeStats(flops=5, bytes_swept=10, gates=1)
        d = ComputeStats(flops=1, bytes_swept=2, gates=2)
        c.merge(d)
        assert c.flops == 6 and c.gates == 3

    def test_run_report_derived(self):
        rep = RunReport("E", "c", "s", 10, 4, comp_seconds=3.0, comm_seconds=1.0)
        assert rep.total_seconds == 4.0
        assert rep.comm_ratio == 0.25
        assert "E/s" in rep.summary()

    def test_run_report_zero_guard(self):
        rep = RunReport("E", "c", "s", 10, 4)
        assert rep.comm_ratio == 0.0
