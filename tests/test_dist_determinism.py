"""Seed-determinism regression: identical runs yield identical reports.

Every figure in the reproduction depends on model numbers being a pure
function of (circuit, partition, machine); host noise may only enter
``wall_seconds``.
"""

from dataclasses import asdict

import pytest

from repro.circuits import generators
from repro.dist import HiSVSimEngine, IQSEngine
from repro.partition import get_partitioner


def model_fields(report):
    """Everything in a RunReport except host wall time."""
    d = asdict(report)
    d.pop("wall_seconds")
    return d


class TestDeterministicReports:
    @pytest.mark.parametrize("name,n", [("qaoa", 10), ("qft", 9), ("adder", 10)])
    def test_hisvsim_dry_runs_are_byte_identical(self, name, n):
        qc = generators.build(name, n)
        p = get_partitioner("dagP").partition(qc, n - 2)
        _, first = HiSVSimEngine(4, dry_run=True).run(qc, p)
        _, second = HiSVSimEngine(4, dry_run=True).run(qc, p)
        assert model_fields(first) == model_fields(second)

    def test_partitioner_is_deterministic(self):
        qc = generators.build("qaoa", 10)
        a = get_partitioner("dagP").partition(qc, 8)
        b = get_partitioner("dagP").partition(qc, 8)
        assert a == b

    def test_overlap_extras_deterministic(self):
        qc = generators.build("ising", 10)
        p = get_partitioner("dagP").partition(qc, 8)
        _, first = HiSVSimEngine(4, dry_run=True, overlap=True).run(qc, p)
        _, second = HiSVSimEngine(4, dry_run=True, overlap=True).run(qc, p)
        assert model_fields(first) == model_fields(second)
        assert "total_overlapped" in first.extras

    def test_iqs_dry_runs_are_byte_identical(self):
        qc = generators.build("qft", 9)
        _, first = IQSEngine(4, dry_run=True).run(qc)
        _, second = IQSEngine(4, dry_run=True).run(qc)
        assert model_fields(first) == model_fields(second)

    def test_real_and_dry_share_model_numbers(self):
        """The dry path must not drift from the executing path."""
        qc = generators.build("bv", 9)
        p = get_partitioner("dagP").partition(qc, 7)
        _, real = HiSVSimEngine(4).run(qc, p)
        _, dry = HiSVSimEngine(4, dry_run=True).run(qc, p)
        assert real.comp_seconds == dry.comp_seconds
        assert real.comm_seconds == dry.comm_seconds
        assert asdict(real.comm) == asdict(dry.comm)
