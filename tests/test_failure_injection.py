"""Failure-injection tests: every guard must actually fire.

Corrupts partitions, exchange plans, layouts and engine inputs in the
ways a buggy caller (or a future refactor) would, and asserts the system
rejects them loudly instead of silently producing wrong amplitudes.
"""

import numpy as np
import pytest

from repro.circuits import generators
from repro.circuits.circuit import QuantumCircuit
from repro.dist import HiSVSimEngine, IQSEngine
from repro.dist.state import DistributedStateVector
from repro.partition import Part, Partition, get_partitioner, validate_partition
from repro.runtime.comm import SimComm
from repro.sv import HierarchicalExecutor, zero_state
from repro.sv.layout import QubitLayout


class TestCorruptedPartitions:
    def _valid(self):
        qc = generators.build("ising", 8)
        return qc, get_partitioner("dagP").partition(qc, 5)

    def test_swapped_part_order_detected(self):
        qc, p = self._valid()
        if p.num_parts < 2:
            pytest.skip("needs >= 2 parts")
        shuffled = Partition(
            p.num_qubits,
            p.num_gates,
            p.limit,
            p.strategy,
            tuple(reversed(p.parts)),
        )
        rep = validate_partition(qc, shuffled)
        assert not rep.ok

    def test_dropped_gate_detected(self):
        qc, p = self._valid()
        first = p.parts[0]
        truncated = Part(first.gate_indices[:-1], first.qubits)
        broken = Partition(
            p.num_qubits,
            p.num_gates,
            p.limit,
            p.strategy,
            (truncated,) + p.parts[1:],
        )
        rep = validate_partition(qc, broken)
        assert any("uncovered" in m for m in rep.problems)

    def test_lying_qubit_set_detected(self):
        qc, p = self._valid()
        first = p.parts[0]
        lying = Part(first.gate_indices, first.qubits[:-1])
        broken = Partition(
            p.num_qubits, p.num_gates, p.limit, p.strategy,
            (lying,) + p.parts[1:],
        )
        rep = validate_partition(qc, broken)
        assert not rep.ok


class TestCorruptedExchangePlans:
    def test_non_bijective_plan_rejected(self):
        comm = SimComm(2, validate_plans=True)
        shards = np.zeros((2, 4), dtype=np.complex128)
        dest_rank = np.zeros((2, 4), dtype=np.int64)  # everything to rank 0
        dest_off = np.zeros((2, 4), dtype=np.int64)  # ... offset 0: collision
        with pytest.raises(ValueError, match="bijection"):
            comm.alltoall_permute(shards, dest_rank, dest_off)

    def test_out_of_range_plan_rejected(self):
        comm = SimComm(2, validate_plans=True)
        shards = np.zeros((2, 4), dtype=np.complex128)
        dest_rank = np.full((2, 4), 7, dtype=np.int64)
        dest_off = np.tile(np.arange(4), (2, 1))
        with pytest.raises(ValueError, match="out of range"):
            comm.alltoall_permute(shards, dest_rank, dest_off)

    def test_valid_plans_pass_validation(self):
        """The engine's real plans must survive strict validation."""
        qc = generators.build("qaoa", 10)
        p = get_partitioner("dagP").partition(qc, 7)
        comm = SimComm(4, validate_plans=True)
        state = DistributedStateVector.zero(10, comm)
        # Drive remaps directly through the engine path.
        engine = HiSVSimEngine(4)
        # Engine creates its own comm; instead remap manually with strict one.
        from repro.dist.exchange import plan_layout_for_part

        for part in p.parts:
            state.remap(
                plan_layout_for_part(state.layout, part.qubits, state.local_bits)
            )
        assert comm.stats.steps >= 0  # no exception = plans were bijective


class TestEngineInputGuards:
    def test_hier_executor_rejects_wrong_width_partition(self):
        qc = generators.build("bv", 8)
        other = generators.build("bv", 9)
        p = get_partitioner("Nat").partition(other, 6)
        with pytest.raises(ValueError, match="does not describe"):
            HierarchicalExecutor().run(qc, p, zero_state(8))

    def test_distributed_engine_rejects_wrong_partition(self):
        qc = generators.build("bv", 8)
        other = generators.build("bv", 9)
        p = get_partitioner("Nat").partition(other, 6)
        with pytest.raises(ValueError, match="does not describe"):
            HiSVSimEngine(4).run(qc, p)

    def test_iqs_gate_wider_than_local_bits(self):
        # 2 local bits cannot host a 3-qubit gate's swapped-in operands.
        qc = QuantumCircuit(4)
        qc.ccx(0, 2, 3)
        with pytest.raises(ValueError, match="local qubits per rank"):
            IQSEngine(4).run(qc)

    def test_iqs_gate_wider_than_shard(self):
        qc = QuantumCircuit(3)
        qc.ccx(0, 1, 2)
        with pytest.raises(ValueError, match="local qubits per rank"):
            IQSEngine(4).run(qc)  # only 1 local bit

    def test_too_many_ranks_for_width(self):
        qc = generators.build("bv", 3)
        with pytest.raises(ValueError):
            IQSEngine(16).run(qc)

    def test_engine_rejects_oversized_working_set(self):
        # Partition computed for a larger local size than the engine has.
        qc = generators.build("qaoa", 8)
        p = get_partitioner("dagP").partition(qc, 8)  # single part, ws 8
        engine = HiSVSimEngine(8)  # only 5 local bits
        with pytest.raises(ValueError, match="exceeds local capacity"):
            engine.run(qc, p)


class TestNumericalIntegrity:
    def test_norm_preserved_under_many_remaps(self):
        comm = SimComm(4, validate_plans=True)
        state = DistributedStateVector.zero(8, comm)
        state.shards[:] = np.random.default_rng(0).standard_normal(
            state.shards.shape
        ) + 1j * np.random.default_rng(1).standard_normal(state.shards.shape)
        norm0 = state.norm()
        import random

        rnd = random.Random(3)
        for _ in range(10):
            perm = list(range(8))
            rnd.shuffle(perm)
            state.remap(QubitLayout(perm))
        assert state.norm() == pytest.approx(norm0)

    def test_engines_do_not_mutate_circuit(self):
        qc = generators.build("ising", 8)
        gates_before = qc.gates
        p = get_partitioner("dagP").partition(qc, 6)
        HiSVSimEngine(4).run(qc, p)
        IQSEngine(4).run(qc)
        assert qc.gates == gates_before
