"""Pauli observable tests against dense operator construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.sv.pauli import energy, pauli_expectation
from repro.sv.simulator import StateVectorSimulator, random_state, zero_state

PAULIS = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


def dense_pauli(term: str) -> np.ndarray:
    """Kron expansion; term[q] acts on qubit q (qubit 0 = LSB)."""
    op = np.eye(1, dtype=complex)
    for c in reversed(term.upper()):  # highest qubit leftmost in kron
        op = np.kron(op, PAULIS[c])
    return op


class TestAgainstDense:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 9999),
        term=st.text(alphabet="IXYZ", min_size=4, max_size=4),
    )
    def test_matches_dense(self, seed, term):
        state = random_state(4, seed=seed)
        got = pauli_expectation(state, term, 4)
        want = float(np.real(np.conj(state) @ dense_pauli(term) @ state))
        assert got == pytest.approx(want, abs=1e-10)

    def test_z_on_zero_state(self):
        assert pauli_expectation(zero_state(3), "ZII", 3) == pytest.approx(1.0)
        assert pauli_expectation(zero_state(3), "ZZZ", 3) == pytest.approx(1.0)

    def test_x_on_plus_state(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        sim = StateVectorSimulator(2)
        sim.run(qc)
        assert pauli_expectation(sim.state, "XI", 2) == pytest.approx(1.0)
        assert pauli_expectation(sim.state, "IX", 2) == pytest.approx(0.0)

    def test_y_eigenstate(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.s(0)  # S H |0> = |+i>
        sim = StateVectorSimulator(1)
        sim.run(qc)
        assert pauli_expectation(sim.state, "Y", 1) == pytest.approx(1.0)

    def test_dict_form(self):
        state = zero_state(4)
        assert pauli_expectation(state, {1: "Z", 3: "Z"}, 4) == pytest.approx(1.0)

    def test_ghz_correlations(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).cx(1, 2)
        sim = StateVectorSimulator(3)
        sim.run(qc)
        assert pauli_expectation(sim.state, "ZZI", 3) == pytest.approx(1.0)
        assert pauli_expectation(sim.state, "ZII", 3) == pytest.approx(0.0)
        assert pauli_expectation(sim.state, "XXX", 3) == pytest.approx(1.0)


class TestEnergy:
    def test_ising_energy(self):
        # H = -Z0 Z1 - Z1 Z2 on |000>: energy -2.
        ham = [(-1.0, "ZZI"), (-1.0, "IZZ")]
        assert energy(zero_state(3), ham, 3) == pytest.approx(-2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            pauli_expectation(zero_state(2), "Z", 2)  # wrong length
        with pytest.raises(ValueError):
            pauli_expectation(zero_state(2), "QZ", 2)  # bad letter
        with pytest.raises(ValueError):
            pauli_expectation(zero_state(2), {5: "Z"}, 2)  # out of range
        with pytest.raises(ValueError):
            pauli_expectation(np.zeros(3, dtype=complex), "ZZ", 2)
