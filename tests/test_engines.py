"""Distributed engine tests: HiSVSIM and IQS vs the flat reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import generators
from repro.dist import HiSVSimEngine, IQSEngine
from repro.partition import DagPPartitioner, get_partitioner, multilevel_partition
from repro.sv.simulator import StateVectorSimulator, random_state

from conftest import SUITE_SMALL, random_circuit


def flat(qc, initial=None):
    sim = StateVectorSimulator(qc.num_qubits, initial_state=initial)
    sim.run(qc)
    return sim.state


class TestHiSVSimCorrectness:
    @pytest.mark.parametrize("name,n", SUITE_SMALL)
    @pytest.mark.parametrize("ranks", [2, 4])
    def test_matches_flat(self, name, n, ranks):
        qc = generators.build(name, n)
        local = n - (ranks.bit_length() - 1)
        p = get_partitioner("dagP").partition(qc, local)
        state, report = HiSVSimEngine(ranks).run(qc, p)
        assert np.allclose(state.to_full(), flat(qc), atol=1e-9)
        assert report.num_parts == p.num_parts
        assert report.comp_seconds > 0

    def test_initial_state(self):
        qc = generators.build("ising", 8)
        init = random_state(8, seed=5)
        p = get_partitioner("Nat").partition(qc, 6)
        state, _ = HiSVSimEngine(4).run(qc, p, initial_full=init)
        assert np.allclose(state.to_full(), flat(qc, initial=init), atol=1e-9)

    @pytest.mark.parametrize("strategy", ["Nat", "DFS", "dagP"])
    def test_all_strategies(self, strategy):
        qc = generators.build("qaoa", 9)
        p = get_partitioner(strategy).partition(qc, 7)
        state, _ = HiSVSimEngine(4).run(qc, p)
        assert np.allclose(state.to_full(), flat(qc), atol=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_property_random_circuits(self, seed):
        qc = random_circuit(8, 25, seed=seed)
        p = get_partitioner("dagP").partition(qc, 6)
        state, _ = HiSVSimEngine(4).run(qc, p)
        assert np.allclose(state.to_full(), flat(qc), atol=1e-9)


class TestMultilevelEngine:
    @pytest.mark.parametrize("name,n", SUITE_SMALL[:6])
    def test_multilevel_matches_flat(self, name, n):
        qc = generators.build(name, n)
        local = n - 2
        ml = multilevel_partition(qc, DagPPartitioner(), local, max(2, local - 2))
        state, report = HiSVSimEngine(4).run(
            qc, ml.outer, multilevel=ml
        )
        assert np.allclose(state.to_full(), flat(qc), atol=1e-9)
        assert report.strategy.endswith("-ML")


class TestIQSCorrectness:
    @pytest.mark.parametrize("name,n", SUITE_SMALL)
    @pytest.mark.parametrize("ranks", [2, 4])
    def test_matches_flat(self, name, n, ranks):
        qc = generators.build(name, n)
        state, report = IQSEngine(ranks).run(qc)
        assert np.allclose(state.to_full(), flat(qc), atol=1e-9)
        # Static mapping restored after every gate.
        from repro.sv.layout import QubitLayout

        assert state.layout == QubitLayout.identity(n)

    @pytest.mark.parametrize("control_fp", [True, False])
    @pytest.mark.parametrize("diagonal_fp", [True, False])
    def test_fastpath_toggles_keep_correctness(self, control_fp, diagonal_fp):
        qc = random_circuit(8, 30, seed=4)
        eng = IQSEngine(
            4, control_fastpath=control_fp, diagonal_fastpath=diagonal_fp
        )
        state, _ = eng.run(qc)
        assert np.allclose(state.to_full(), flat(qc), atol=1e-9)

    def test_fastpaths_reduce_traffic(self):
        qc = generators.build("qft", 9)
        _, with_fp = IQSEngine(4, diagonal_fastpath=True).run(qc)
        _, without = IQSEngine(4, diagonal_fastpath=False).run(qc)
        assert with_fp.comm.total_bytes < without.comm.total_bytes

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_property_random_circuits(self, seed):
        qc = random_circuit(7, 20, seed=seed)
        state, _ = IQSEngine(4).run(qc)
        assert np.allclose(state.to_full(), flat(qc), atol=1e-9)


class TestDryRunConsistency:
    @pytest.mark.parametrize("name,n", SUITE_SMALL[:6])
    def test_hisvsim_dry_matches_real_traffic(self, name, n):
        qc = generators.build(name, n)
        p = get_partitioner("dagP").partition(qc, n - 2)
        _, real = HiSVSimEngine(4).run(qc, p)
        _, dry = HiSVSimEngine(4, dry_run=True).run(qc, p)
        assert dry.comm.total_bytes == real.comm.total_bytes
        assert dry.comm.total_msgs == real.comm.total_msgs
        assert dry.comm.max_bytes_per_rank == pytest.approx(
            real.comm.max_bytes_per_rank
        )
        assert dry.comp_seconds == pytest.approx(real.comp_seconds)

    @pytest.mark.parametrize("name,n", SUITE_SMALL[:6])
    def test_iqs_dry_matches_real_traffic(self, name, n):
        qc = generators.build(name, n)
        _, real = IQSEngine(4).run(qc)
        _, dry = IQSEngine(4, dry_run=True).run(qc)
        assert dry.comm.total_bytes == real.comm.total_bytes
        assert dry.comm.max_bytes_per_rank == pytest.approx(
            real.comm.max_bytes_per_rank
        )

    def test_dry_run_rejects_initial_state(self):
        qc = generators.build("bv", 8)
        p = get_partitioner("Nat").partition(qc, 6)
        with pytest.raises(ValueError):
            HiSVSimEngine(4, dry_run=True).run(
                qc, p, initial_full=np.zeros(256, dtype=complex)
            )
        with pytest.raises(ValueError):
            IQSEngine(4, dry_run=True).run(
                qc, initial_full=np.zeros(256, dtype=complex)
            )


class TestPaperShape:
    """The headline claims, asserted at test scale."""

    def test_hisvsim_communicates_less_than_iqs(self):
        for name, n in [("bv", 10), ("ising", 10), ("qaoa", 10)]:
            qc = generators.build(name, n)
            p = get_partitioner("dagP").partition(qc, n - 3)
            _, h = HiSVSimEngine(8, dry_run=True).run(qc, p)
            _, i = IQSEngine(8, dry_run=True).run(qc)
            assert h.comm.total_bytes < i.comm.total_bytes, name

    def test_improvement_factor_above_one(self):
        qc = generators.build("cc", 12)
        p = get_partitioner("dagP").partition(qc, 9)
        _, h = HiSVSimEngine(8, dry_run=True).run(qc, p)
        _, i = IQSEngine(8, dry_run=True).run(qc)
        assert i.total_seconds / h.total_seconds > 1.0

    def test_overlap_option(self):
        qc = generators.build("bv", 10)
        p = get_partitioner("dagP").partition(qc, 8)
        _, rep = HiSVSimEngine(4, overlap=True, dry_run=True).run(qc, p)
        assert "total_overlapped" in rep.extras
        assert rep.extras["total_overlapped"] <= rep.total_seconds
