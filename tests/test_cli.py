"""CLI driver tests (run in-process through main())."""

import os

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_circuit_stats(self, capsys):
        assert main(["circuit", "bv", "--qubits", "8"]) == 0
        out = capsys.readouterr().out
        assert "qubits=8" in out
        assert "gates=" in out

    def test_circuit_qasm(self, capsys):
        assert main(["circuit", "cat_state", "--qubits", "5", "--qasm"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OPENQASM 2.0;")
        assert "qreg q[5];" in out

    def test_experiment_runs(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_experiment_save(self, capsys, monkeypatch, tmp_path):
        # RESULTS_DIR is read at import time; patch the module constant.
        import repro.cli as cli_mod

        monkeypatch.setattr(
            "repro.cli.RESULTS_DIR", str(tmp_path), raising=True
        )
        assert main(["table4", "--scale", "tiny", "--save"]) == 0
        files = os.listdir(tmp_path)
        assert any(f.startswith("table4") for f in files)

    def test_simulate_fused(self, capsys):
        assert main(["simulate", "qft", "--qubits", "8", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "fusion=on" in out
        assert "saved" in out
        assert "max |fused - flat|" in out

    def test_simulate_no_fuse(self, capsys):
        assert main(
            ["simulate", "bv", "--qubits", "8", "--no-fuse", "--verify"]
        ) == 0
        out = capsys.readouterr().out
        assert "fusion=off" in out
        assert "(saved 0)" in out

    def test_simulate_options(self, capsys):
        assert main([
            "simulate", "ising", "--qubits", "8", "--limit", "5",
            "--strategy", "Nat", "--max-fused-qubits", "3", "--pad-to", "6",
        ]) == 0
        out = capsys.readouterr().out
        assert "strategy=Nat" in out
        assert "max_fused_qubits=3" in out

    def test_simulate_threaded_backend(self, capsys):
        assert main([
            "simulate", "qft", "--qubits", "8", "--backend", "threaded",
            "--threads", "2", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "backend=threaded[2]" in out
        assert "parts by backend: threaded[2]:" in out
        assert "part wall time" in out
        assert "max |fused - flat|" in out

    def test_simulate_process_backend(self, capsys):
        assert main([
            "simulate", "bv", "--qubits", "8", "--backend", "process",
            "--threads", "2", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "backend=process[2]" in out
        assert "max |fused - flat|" in out

    def test_simulate_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            main(["simulate", "qft", "--qubits", "6", "--backend", "gpu"])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus-command"])

    def test_unknown_circuit_family(self):
        with pytest.raises(KeyError):
            main(["circuit", "bogus"])
