"""Hierarchical Gather-Execute-Scatter executor tests (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import generators
from repro.partition import get_partitioner
from repro.sv.hier import ExecutionTrace, HierarchicalExecutor, pad_working_set
from repro.sv.simulator import StateVectorSimulator, random_state, zero_state

from conftest import SUITE_SMALL, random_circuit


def reference_state(qc, initial=None):
    sim = StateVectorSimulator(qc.num_qubits, initial_state=initial)
    sim.run(qc)
    return sim.state


class TestEquivalence:
    @pytest.mark.parametrize("name,n", SUITE_SMALL)
    @pytest.mark.parametrize("strategy", ["Nat", "DFS", "dagP"])
    def test_batched_matches_flat(self, name, n, strategy):
        qc = generators.build(name, n)
        limit = max(3, n - 3)
        p = get_partitioner(strategy).partition(qc, limit)
        state = zero_state(n)
        HierarchicalExecutor().run(qc, p, state)
        assert np.allclose(state, reference_state(qc), atol=1e-9)

    @pytest.mark.parametrize("name,n", SUITE_SMALL[:4])
    def test_literal_matches_batched(self, name, n):
        qc = generators.build(name, n)
        p = get_partitioner("dagP").partition(qc, max(3, n - 3))
        a = zero_state(n)
        b = zero_state(n)
        HierarchicalExecutor(mode="batched").run(qc, p, a)
        HierarchicalExecutor(mode="literal").run(qc, p, b)
        assert np.allclose(a, b, atol=1e-10)

    def test_arbitrary_initial_state(self):
        qc = generators.build("ising", 8)
        p = get_partitioner("dagP").partition(qc, 5)
        init = random_state(8, seed=42)
        state = init.copy()
        HierarchicalExecutor().run(qc, p, state)
        assert np.allclose(state, reference_state(qc, initial=init), atol=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 9999), limit=st.integers(3, 6))
    def test_property_random_circuits(self, seed, limit):
        qc = random_circuit(7, 25, seed=seed)
        p = get_partitioner("dagP").partition(qc, limit)
        state = zero_state(7)
        HierarchicalExecutor().run(qc, p, state)
        assert np.allclose(state, reference_state(qc), atol=1e-9)


class TestPadding:
    def test_pad_working_set(self):
        assert pad_working_set((2, 5), 8, 4) == (0, 1, 2, 5)
        assert pad_working_set((0, 1), 8, 2) == (0, 1)
        # Cannot pad beyond register width.
        assert pad_working_set((0,), 2, 5) == (0, 1)

    def test_padded_execution_still_correct(self):
        qc = generators.build("cc", 8)
        p = get_partitioner("Nat").partition(qc, 4)
        state = zero_state(8)
        HierarchicalExecutor(pad_to=6).run(qc, p, state)
        assert np.allclose(state, reference_state(qc), atol=1e-9)

    @pytest.mark.parametrize("fuse", [True, False])
    def test_pad_to_smaller_than_natural_working_set(self, fuse):
        # pad_to below a part's natural working set must never shrink the
        # set: execution stays correct and traced sets cover the parts.
        qc = generators.build("qft", 7)
        p = get_partitioner("dagP").partition(qc, 5)
        assert p.max_working_set() > 2
        trace = ExecutionTrace()
        state = zero_state(7)
        HierarchicalExecutor(pad_to=2, fuse=fuse).run(qc, p, state, trace=trace)
        assert np.allclose(state, reference_state(qc), atol=1e-10)
        for traced, part in zip(trace.part_qubits, p.parts):
            assert set(part.qubits) <= set(traced)
            assert len(traced) == part.working_set_size  # no padding added

    def test_pad_working_set_never_shrinks(self):
        assert pad_working_set((1, 4, 6), 8, 2) == (1, 4, 6)


class TestTrace:
    def test_trace_accounting(self):
        qc = generators.build("bv", 8)
        p = get_partitioner("dagP").partition(qc, 5)
        trace = ExecutionTrace()
        HierarchicalExecutor().run(qc, p, zero_state(8), trace=trace)
        assert trace.num_parts == p.num_parts
        assert sum(trace.part_gates) == len(qc)
        # Every part runs on exactly one kernel path, and only gathered
        # parts move the full state through the index table.
        assert trace.strided_parts + trace.gathered_parts == p.num_parts
        assert trace.gather_elements == trace.gathered_parts * (1 << 8)
        assert trace.scatter_elements == trace.gather_elements
        for qubits, part in zip(trace.part_qubits, p.parts):
            assert set(part.qubits) <= set(qubits)


class TestFusedTrace:
    @pytest.mark.parametrize("mode", ["batched", "literal"])
    def test_fused_and_unfused_agree_with_flat(self, mode):
        qc = generators.build("qft", 7)
        p = get_partitioner("dagP").partition(qc, 5)
        ref = reference_state(qc)
        for fuse in (True, False):
            state = zero_state(7)
            HierarchicalExecutor(mode=mode, fuse=fuse).run(qc, p, state)
            assert np.allclose(state, ref, atol=1e-10), (mode, fuse)

    @pytest.mark.parametrize("mode", ["batched", "literal"])
    def test_trace_accounting_fused_vs_unfused(self, mode):
        qc = generators.build("qft", 7)
        p = get_partitioner("dagP").partition(qc, 5)
        fused, unfused = ExecutionTrace(), ExecutionTrace()
        HierarchicalExecutor(mode=mode, fuse=True).run(
            qc, p, zero_state(7), trace=fused
        )
        HierarchicalExecutor(mode=mode, fuse=False).run(
            qc, p, zero_state(7), trace=unfused
        )
        # Source-gate accounting is fusion-invariant.
        assert fused.part_gates == unfused.part_gates
        assert fused.total_gates == unfused.total_gates == len(qc)
        assert fused.part_qubits == unfused.part_qubits
        # Kernel-path accounting: each part is either strided or
        # gathered, and gather traffic is charged only to gathered
        # parts.  Fusion can change which path a part takes (larger
        # fused ops fall back to the gather matrix), so the split may
        # differ between the two runs — the totals may not.
        for t in (fused, unfused):
            assert t.strided_parts + t.gathered_parts == p.num_parts
            assert t.gather_elements == t.gathered_parts * (1 << 7)
            assert t.scatter_elements == t.gather_elements
        # Executed-sweep accounting reflects fusion.
        assert unfused.total_ops == len(qc)
        assert unfused.sweeps_saved == 0
        assert fused.total_ops < len(qc)
        assert fused.sweeps_saved == len(qc) - fused.total_ops
        assert all(o >= 1 for o in fused.part_ops)


class TestValidation:
    def test_bad_mode(self):
        with pytest.raises(ValueError):
            HierarchicalExecutor(mode="warp")

    def test_state_length_mismatch(self):
        qc = generators.build("bv", 8)
        p = get_partitioner("Nat").partition(qc, 5)
        with pytest.raises(ValueError):
            HierarchicalExecutor().run(qc, p, zero_state(7))
