"""OpenQASM writer/parser tests."""

import math

import pytest

from repro.circuits import generators
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.qasm import QasmError, dumps, loads

from conftest import SUITE_SMALL, random_circuit


class TestRoundTrip:
    @pytest.mark.parametrize("name,n", SUITE_SMALL)
    def test_suite_roundtrip(self, name, n):
        qc = generators.build(name, n)
        back = loads(dumps(qc))
        assert back.num_qubits == qc.num_qubits
        assert len(back) == len(qc)
        for a, b in zip(qc, back):
            assert a.name == b.name
            assert a.qubits == b.qubits
            assert a.params == pytest.approx(b.params)

    def test_random_roundtrip(self):
        qc = random_circuit(6, 60, seed=3)
        assert loads(dumps(qc)) == qc


class TestParsing:
    def test_minimal_program(self):
        qc = loads(
            """
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[2];
            h q[0];
            cx q[0],q[1];
            """
        )
        assert len(qc) == 2
        assert qc[1].name == "cx"
        assert qc[1].qubits == (0, 1)

    def test_parameter_expressions(self):
        qc = loads("qreg q[1]; rx(pi/2) q[0]; rz(-pi) q[0]; u1(3*pi/4+1) q[0];")
        assert qc[0].params[0] == pytest.approx(math.pi / 2)
        assert qc[1].params[0] == pytest.approx(-math.pi)
        assert qc[2].params[0] == pytest.approx(3 * math.pi / 4 + 1)

    def test_measure_barrier_creg_ignored(self):
        qc = loads(
            "qreg q[2]; creg c[2]; h q[0]; barrier q[0]; "
            "measure q[0] -> c[0]; reset q[1];"
        )
        assert len(qc) == 1

    def test_comments_stripped(self):
        qc = loads("qreg q[1]; // a comment\nh q[0]; // trailing")
        assert len(qc) == 1

    def test_multiple_registers_concatenate(self):
        qc = loads("qreg a[2]; qreg b[2]; cx a[1],b[0];")
        assert qc.num_qubits == 4
        assert qc[0].qubits == (1, 2)


class TestErrors:
    def test_no_qreg(self):
        with pytest.raises(QasmError):
            loads("h q[0];")

    def test_unknown_gate(self):
        with pytest.raises(QasmError):
            loads("qreg q[1]; warp q[0];")

    def test_out_of_range_qubit(self):
        with pytest.raises(QasmError):
            loads("qreg q[2]; h q[5];")

    def test_unknown_register(self):
        with pytest.raises(QasmError):
            loads("qreg q[2]; h r[0];")

    def test_user_defined_gate_rejected(self):
        with pytest.raises(QasmError):
            loads("qreg q[1]; gate foo a { h a; } foo q[0];")

    def test_malicious_parameter_rejected(self):
        with pytest.raises(QasmError):
            loads("qreg q[1]; rx(__import__) q[0];")
        with pytest.raises(QasmError):
            loads("qreg q[1]; rx(x) q[0];")

    def test_bad_argument_syntax(self):
        with pytest.raises(QasmError):
            loads("qreg q[2]; cx q[0] q[1];")  # missing comma
