"""Part-level gate fusion and compiled execution plan tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import generators
from repro.circuits.gates import make_gate
from repro.partition import get_partitioner
from repro.sv.fusion import (
    CompiledPartPlan,
    FusedGate,
    PlanCache,
    compile_part,
    compile_partition,
    plan_fusion_groups,
)
from repro.sv.hier import ExecutionTrace, HierarchicalExecutor
from repro.sv.kernels import apply_matrix
from repro.sv.simulator import StateVectorSimulator, zero_state

from conftest import SUITE_SMALL, random_circuit


def flat_state(qc):
    sim = StateVectorSimulator(qc.num_qubits)
    sim.run(qc)
    return sim.state


class TestGroupPlanner:
    def test_respects_qubit_limit(self):
        qc = generators.build("qft", 8)
        groups = plan_fusion_groups(list(qc), 3, 3)
        assert all(len(g.qubits) <= 3 for g in groups)

    def test_covers_every_gate_exactly_once(self):
        qc = generators.build("qaoa", 8)
        groups = plan_fusion_groups(list(qc), 4)
        seen = sorted(m for g in groups for m in g.members)
        assert seen == list(range(len(qc)))

    def test_dependency_order_only_swaps_disjoint_gates(self):
        # Any pair whose relative order changed must act on disjoint qubits.
        qc = random_circuit(7, 40, seed=3)
        gates = list(qc)
        groups = plan_fusion_groups(gates, 4)
        emitted = [m for g in groups for m in g.members]
        for pos_a, a in enumerate(emitted):
            for b in emitted[pos_a + 1 :]:
                if b < a:  # b originally preceded a but now runs after
                    assert not (set(gates[a].qubits) & set(gates[b].qubits))

    def test_diagonal_groups_marked_and_wider(self):
        # Pure-diagonal chain: rzz ladder + rz sprinkle over 5 qubits.
        gates = [make_gate("rzz", [q, q + 1], [0.3 * (q + 1)]) for q in range(4)]
        gates += [make_gate("rz", [q], [0.1 * (q + 1)]) for q in range(5)]
        groups = plan_fusion_groups(gates, 2, 4)
        assert all(g.diagonal for g in groups)
        # The diagonal limit (4) admits wider groups than the dense cap (2).
        assert max(len(g.qubits) for g in groups) > 2
        assert all(len(g.qubits) <= 4 for g in groups)
        # A dense gate breaks the diagonal run and obeys the dense cap.
        mixed = gates[:4] + [make_gate("h", [0])]
        mgroups = plan_fusion_groups(mixed, 2, 4)
        dense = [g for g in mgroups if not g.diagonal]
        assert dense and all(len(g.qubits) <= 2 for g in dense)

    def test_single_qubit_chain_fuses_to_one_group(self):
        gates = [make_gate("h", [0]), make_gate("t", [0]), make_gate("h", [0])]
        groups = plan_fusion_groups(gates, 2)
        assert len(groups) == 1
        assert groups[0].members == (0, 1, 2)

    def test_bad_limits_rejected(self):
        with pytest.raises(ValueError):
            plan_fusion_groups([], 0)
        with pytest.raises(ValueError):
            plan_fusion_groups([], 3, 2)


class TestFusedGate:
    def test_matrix_is_shared_read_only(self):
        plan = compile_part(
            generators.build("qft", 5), range(5), range(5), fuse=True
        )
        op = plan.ops[0]
        with pytest.raises(ValueError):
            op.matrix()[0, 0] = 0.0

    def test_remap_shares_matrix(self):
        g = FusedGate((2, 5), np.eye(4, dtype=np.complex128), False, (0,))
        r = g.remap({2: 0, 5: 1})
        assert r.qubits == (0, 1)
        assert r.matrix() is g.matrix()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            FusedGate((0, 1), np.eye(2, dtype=np.complex128), False)


class TestCompiledPlanEquivalence:
    @pytest.mark.parametrize("name,n", SUITE_SMALL)
    def test_whole_circuit_plan_matches_flat(self, name, n):
        qc = generators.build(name, n)
        plan = compile_part(qc, range(len(qc)), range(n), fuse=True,
                            max_fused_qubits=5)
        state = zero_state(n)
        for op in plan.local_ops():
            apply_matrix(state, op.matrix(), op.qubits, n,
                         diagonal=op.is_diagonal)
        assert np.allclose(state, flat_state(qc), atol=1e-10)

    @pytest.mark.parametrize("name,n", SUITE_SMALL)
    @pytest.mark.parametrize("strategy", ["Nat", "dagP"])
    def test_fused_hierarchical_matches_flat(self, name, n, strategy):
        qc = generators.build(name, n)
        p = get_partitioner(strategy).partition(qc, max(3, n - 3))
        state = zero_state(n)
        HierarchicalExecutor(fuse=True).run(qc, p, state)
        assert np.allclose(state, flat_state(qc), atol=1e-10)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 9999), cap=st.integers(1, 6))
    def test_property_random_circuits_any_cap(self, seed, cap):
        qc = random_circuit(7, 30, seed=seed)
        p = get_partitioner("dagP").partition(qc, 5)
        state = zero_state(7)
        HierarchicalExecutor(fuse=True, max_fused_qubits=cap).run(qc, p, state)
        assert np.allclose(state, flat_state(qc), atol=1e-10)

    def test_unfused_plan_one_op_per_gate(self):
        qc = generators.build("qft", 6)
        plan = compile_part(qc, range(len(qc)), range(6), fuse=False)
        assert plan.num_ops == len(qc)
        assert plan.sweeps_saved == 0

    def test_fusion_reduces_sweeps_at_least_2x_on_qft(self):
        # Small-scale version of the bench_fusion acceptance criterion.
        qc = generators.build("qft", 12)
        p = get_partitioner("dagP").partition(qc, 9)
        plans = compile_partition(qc, p, fuse=True, max_fused_qubits=5)
        for plan in plans:
            assert plan.num_ops * 2 <= plan.num_source_gates, (
                plan.num_ops,
                plan.num_source_gates,
            )


class TestPlanCache:
    def test_hits_on_repeated_execution(self):
        qc = generators.build("ising", 8)
        p = get_partitioner("dagP").partition(qc, 5)
        ex = HierarchicalExecutor(fuse=True)
        ex.run(qc, p, zero_state(8))
        assert ex.plan_cache.misses == p.num_parts
        assert ex.plan_cache.hits == 0
        ex.run(qc, p, zero_state(8))
        assert ex.plan_cache.misses == p.num_parts
        assert ex.plan_cache.hits == p.num_parts

    def test_shared_cache_across_executors(self):
        qc = generators.build("bv", 8)
        p = get_partitioner("dagP").partition(qc, 5)
        cache = PlanCache()
        HierarchicalExecutor(fuse=True, plan_cache=cache).run(
            qc, p, zero_state(8)
        )
        misses = cache.misses
        HierarchicalExecutor(
            mode="literal", fuse=True, plan_cache=cache
        ).run(qc, p, zero_state(8))
        assert cache.misses == misses  # second executor fully reused plans

    def test_distinct_options_distinct_entries(self):
        qc = generators.build("bv", 6)
        cache = PlanCache()
        a = cache.get_or_compile(qc, range(len(qc)), range(6), fuse=True)
        b = cache.get_or_compile(qc, range(len(qc)), range(6), fuse=False)
        assert a is not b
        assert cache.misses == 2

    def test_eviction_bound(self):
        qc = generators.build("bv", 6)
        cache = PlanCache(max_entries=2)
        for k in (2, 3, 4):
            cache.get_or_compile(
                qc, range(len(qc)), range(6), max_fused_qubits=k
            )
        assert len(cache) == 2

    def test_gather_table_cached_per_plan(self):
        qc = generators.build("bv", 6)
        plan = compile_part(qc, range(len(qc)), (0, 2, 4), fuse=True)
        t1 = plan.gather_table(6)
        assert t1 is plan.gather_table(6)
        assert plan.gather_table(6).shape == (1 << 3, 1 << 3)


class TestDistributedFusion:
    def test_hisvsim_fused_matches_flat(self):
        from repro.dist import HiSVSimEngine

        qc = generators.build("qft", 9)
        p = get_partitioner("dagP").partition(qc, 7)
        state, report = HiSVSimEngine(4, fuse=True).run(qc, p)
        assert np.allclose(state.to_full(), flat_state(qc), atol=1e-10)
        # Fewer shard sweeps than gates were charged.
        assert report.compute.gates < len(qc)

    def test_hisvsim_fused_dry_matches_real(self):
        from repro.dist import HiSVSimEngine

        qc = generators.build("ising", 9)
        p = get_partitioner("dagP").partition(qc, 7)
        _, real = HiSVSimEngine(4, fuse=True).run(qc, p)
        _, dry = HiSVSimEngine(4, fuse=True, dry_run=True).run(qc, p)
        assert real.comp_seconds == pytest.approx(dry.comp_seconds)
        assert real.comm.total_bytes == dry.comm.total_bytes

    def test_shared_plan_cache_between_engines(self):
        from repro.dist import HiSVSimEngine

        qc = generators.build("bv", 9)
        p = get_partitioner("dagP").partition(qc, 7)
        cache = PlanCache()
        HiSVSimEngine(4, fuse=True, plan_cache=cache).run(qc, p)
        assert cache.misses > 0
        misses = cache.misses
        HiSVSimEngine(8, fuse=True, plan_cache=cache).run(qc, p)
        assert cache.misses == misses  # same parts, plans reused
