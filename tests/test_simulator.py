"""Flat StateVectorSimulator tests (incl. measurement utilities)."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.sv.simulator import StateVectorSimulator, random_state, zero_state


class TestStates:
    def test_zero_state(self):
        s = zero_state(3)
        assert s[0] == 1 and np.all(s[1:] == 0)

    def test_random_state_normalised_and_deterministic(self):
        a = random_state(5, seed=2)
        b = random_state(5, seed=2)
        assert np.allclose(a, b)
        assert np.isclose(np.linalg.norm(a), 1.0)
        assert not np.allclose(a, random_state(5, seed=3))


class TestRun:
    def test_ghz(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).cx(1, 2)
        sim = StateVectorSimulator(3)
        sim.run(qc)
        assert np.isclose(abs(sim.state[0]) ** 2, 0.5)
        assert np.isclose(abs(sim.state[7]) ** 2, 0.5)
        assert sim.gates_applied == 3

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            StateVectorSimulator(2).run(QuantumCircuit(3))

    def test_initial_state_copied(self):
        init = zero_state(2)
        sim = StateVectorSimulator(2, initial_state=init)
        qc = QuantumCircuit(2)
        qc.x(0)
        sim.run(qc)
        assert init[0] == 1  # caller's array untouched

    def test_bad_initial_state(self):
        with pytest.raises(ValueError):
            StateVectorSimulator(2, initial_state=np.zeros(3, dtype=complex))

    def test_reset(self):
        sim = StateVectorSimulator(2)
        qc = QuantumCircuit(2)
        qc.h(0)
        sim.run(qc)
        sim.reset()
        assert sim.state[0] == 1
        assert sim.gates_applied == 0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            StateVectorSimulator(0)


class TestMeasurement:
    def test_probabilities_full(self):
        sim = StateVectorSimulator(2)
        qc = QuantumCircuit(2)
        qc.h(0)
        sim.run(qc)
        p = sim.probabilities()
        assert np.allclose(p, [0.5, 0.5, 0, 0])

    def test_probabilities_marginal(self):
        sim = StateVectorSimulator(3)
        qc = QuantumCircuit(3)
        qc.x(2)
        qc.h(0)
        sim.run(qc)
        p = sim.probabilities(qubits=[2])
        assert np.allclose(p, [0, 1])
        p01 = sim.probabilities(qubits=[0, 1])
        assert np.allclose(p01, [0.5, 0.5, 0, 0])

    def test_probabilities_duplicate_qubits_rejected(self):
        # Regression: duplicate bits collapsed in extract_bits and produced
        # a silently wrong distribution instead of an error.
        sim = StateVectorSimulator(3)
        qc = QuantumCircuit(3)
        qc.h(0)
        sim.run(qc)
        with pytest.raises(ValueError, match="distinct"):
            sim.probabilities(qubits=[0, 0])

    def test_probabilities_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            StateVectorSimulator(2).probabilities(qubits=[2])

    def test_sampling_matches_distribution(self):
        sim = StateVectorSimulator(1)
        qc = QuantumCircuit(1)
        qc.h(0)
        sim.run(qc)
        counts = sim.sample(shots=4000, seed=11)
        assert set(counts) == {0, 1}
        assert abs(counts[0] - 2000) < 200

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            StateVectorSimulator(1).sample(0)

    def test_expectation_z(self):
        sim = StateVectorSimulator(1)
        assert np.isclose(sim.expectation_z(0), 1.0)  # |0>
        qc = QuantumCircuit(1)
        qc.x(0)
        sim.run(qc)
        assert np.isclose(sim.expectation_z(0), -1.0)
        sim.reset()
        qc2 = QuantumCircuit(1)
        qc2.h(0)
        sim.run(qc2)
        assert np.isclose(sim.expectation_z(0), 0.0, atol=1e-10)

    def test_fidelity(self):
        sim = StateVectorSimulator(2)
        assert np.isclose(sim.fidelity(zero_state(2)), 1.0)
        other = zero_state(2)
        other[0], other[3] = 0, 1
        assert np.isclose(sim.fidelity(other), 0.0)
        with pytest.raises(ValueError):
            sim.fidelity(zero_state(3))

    def test_reference_kernels_flag(self):
        qc = QuantumCircuit(4)
        qc.h(0).cx(0, 1).ccx(0, 1, 2).swap(2, 3)
        a = StateVectorSimulator(4)
        b = StateVectorSimulator(4, reference_kernels=True)
        a.run(qc)
        b.run(qc)
        assert np.allclose(a.state, b.state, atol=1e-10)
