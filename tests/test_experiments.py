"""Experiment-harness tests: every table/figure module runs at tiny scale
and exhibits the paper's qualitative shape."""

import pytest

from repro.experiments import (
    SCALES,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    table1,
    table2,
    table3,
    table4,
    thread_scaling,
)
from repro.experiments.common import (
    Scale,
    current_scale,
    partition_cached,
    ranks_for,
    suite_circuits,
)
from repro.experiments.sweep import run_sweep

TINY = SCALES["tiny"]
SMALL = SCALES["small"]


@pytest.fixture(scope="module")
def tiny_sweep():
    return run_sweep(TINY)


@pytest.fixture(scope="module")
def small_sweep():
    """Shape assertions need realistic compute/comm balance: the "small"
    scale runs dry (no amplitudes) and stays fast."""
    return run_sweep(SMALL)


class TestCommon:
    def test_scales_defined(self):
        assert set(SCALES) == {"tiny", "small", "paper"}
        assert SCALES["paper"].base_qubits == 30

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert current_scale().name == "tiny"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(KeyError):
            current_scale()

    def test_suite_has_13_circuits(self):
        suite = suite_circuits(TINY.base_qubits)
        assert len(suite) == 13
        assert suite["adder37"].num_qubits == TINY.base_qubits + 7

    def test_ranks_for_groups(self):
        assert ranks_for("bv", TINY) == TINY.ranks_small
        assert ranks_for("bv35", TINY) == TINY.ranks_large

    def test_partition_cache_hits(self):
        suite = suite_circuits(TINY.base_qubits)
        a = partition_cached(suite["bv"], "Nat", 6, TINY.base_qubits)
        b = partition_cached(suite["bv"], "Nat", 6, TINY.base_qubits)
        assert a is b


class TestSweep:
    def test_sweep_covers_all_algorithms(self, tiny_sweep):
        circuits = tiny_sweep.circuits()
        assert len(circuits) == 13
        for c in circuits:
            for r in tiny_sweep.ranks(c):
                for algo in ("Nat", "DFS", "dagP", "Intel"):
                    rep = tiny_sweep.get(c, r, algo)
                    assert rep.total_seconds > 0

    def test_sweep_cached(self):
        assert run_sweep(TINY) is run_sweep(TINY)


class TestTable1:
    def test_rows_and_render(self):
        res = table1.run(TINY)
        assert len(res.rows) == 13
        text = res.table()
        assert "cat_state" in text and "paper gates" in text

    def test_gate_counts_positive(self):
        for row in table1.run(TINY).rows:
            assert row.gates > 0
            assert row.qubits >= TINY.base_qubits


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run(num_qubits=16, limit=10)

    def test_all_rows_present(self, result):
        assert len(result.rows) == 6

    def test_dagp_fewest_parts_and_fastest(self, result):
        for circuit in ("bv", "ising"):
            nat = result.by(circuit, "Nat")
            dagp = result.by(circuit, "dagP")
            assert dagp.parts <= nat.parts
            assert dagp.exec_seconds <= nat.exec_seconds
            assert dagp.dram_pct <= nat.dram_pct
            assert dagp.mem_bound_pct <= nat.mem_bound_pct

    def test_render(self, result):
        assert "DRAM %" in result.table()


class TestFig5:
    def test_improvement_factors_above_one_for_dagp(self, small_sweep):
        res = fig5.run(SMALL)
        factors = res.factors("dagP")
        assert factors
        # dagP beats IQS on the overwhelming majority of instances.
        wins = sum(1 for f in factors if f > 1.0)
        assert wins / len(factors) > 0.8
        assert res.geomean("dagP") > 1.0

    def test_factor_grows_with_scale_group(self, small_sweep):
        res = fig5.run(SMALL)
        small = [r.factor for r in res.rows if r.circuit == "bv" and r.strategy == "dagP"]
        large = [r.factor for r in res.rows if r.circuit == "bv35" and r.strategy == "dagP"]
        assert max(large) >= max(small) * 0.8  # larger circuits at least comparable

    def test_render(self, small_sweep):
        assert "improvement factor" in fig5.run(SMALL).table()


class TestFig6:
    def test_strong_scaling(self, small_sweep):
        res = fig6.run(SMALL)
        # More ranks -> faster (close-to-linear): check every circuit/algo.
        for c in res.sweep.circuits():
            for algo in ("dagP", "Intel"):
                sp = res.speedup(c, algo)
                assert sp > 1.0, (c, algo)

    def test_hisvsim_compute_not_worse_than_iqs(self, small_sweep):
        res = fig6.run(SMALL)
        for c in res.sweep.circuits():
            for r in res.sweep.ranks(c):
                dag = [
                    x
                    for x in res.rows
                    if (x.circuit, x.ranks, x.algorithm) == (c, r, "dagP")
                ][0]
                iqs = [
                    x
                    for x in res.rows
                    if (x.circuit, x.ranks, x.algorithm) == (c, r, "Intel")
                ][0]
                assert dag.comp_seconds <= iqs.comp_seconds * 1.01


class TestFig7:
    def test_dagp_lowest_comm(self, small_sweep):
        res = fig7.run(SMALL)
        for c in res.sweep.circuits():
            for r in res.sweep.ranks(c):
                dagp = res.value(c, r, "dagP")
                intel = res.value(c, r, "Intel")
                assert dagp <= intel * 1.001, (c, r)


class TestFig8:
    def test_ordering(self, small_sweep):
        res = fig8.run(SMALL)
        for ranks in {k[1] for k in res.ratios}:
            dagp = res.ratios.get(("dagP", ranks))
            intel = res.ratios.get(("Intel", ranks))
            if dagp is not None and intel is not None:
                assert dagp < intel

    def test_render(self, small_sweep):
        assert "communication ratio" in fig8.run(SMALL).table()


class TestFig9:
    def test_profiles(self, small_sweep):
        res = fig9.run(SMALL)
        # dagP should win the largest share of runtime instances (paper: 65%).
        best = {a: res.best_share(a) for a in ("Nat", "DFS", "dagP", "Intel")}
        assert best["dagP"] == max(best.values())
        assert res.best_share("dagP", "comm") >= 0.5
        assert "θ=1.3" in res.table()


class TestFig10:
    def test_multilevel_improves(self):
        res = fig10.run(TINY)
        assert len(res.rows) >= 4
        # Paper: wins on at least 4 of 5 circuits; average reduction > 0.
        wins = sum(1 for r in res.rows if r.reduction > 0)
        assert wins >= len(res.rows) - 1
        assert res.mean_reduction() > 0
        assert "multi-level" in res.table()


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3.run(num_qubits=14, num_gpus=4)

    def test_gates_conserved(self, result):
        for est in result.estimates.values():
            assert sum(r.gates for r in est.rows) == result.total_gates

    def test_dagp_fewest_parts(self, result):
        assert (
            result.estimates["dagP"].num_parts
            <= result.estimates["Nat"].num_parts
        )

    def test_render(self, result):
        assert "partitioning breakdown" in result.table()


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return table4.run(num_qubits=14, num_gpus=4)

    def test_comm_ordering(self, result):
        est = result.estimates
        assert est["dagP"].comm_seconds <= est["DFS"].comm_seconds * 1.2
        assert est["dagP"].comm_seconds <= est["Nat"].comm_seconds

    def test_hybrid_beats_hyquas(self, result):
        assert (
            result.estimates["dagP"].total_seconds
            < result.estimates["HyQuas"].total_seconds
        )

    def test_render(self, result):
        assert "hybrid" in result.table()


class TestThreadScaling:
    def test_close_to_linear(self):
        res = thread_scaling.run(num_qubits=16, limit=10, threads=[1, 2, 4, 8])
        sp = {r.threads: r.speedup for r in res.rows}
        assert sp[2] > 1.5
        assert sp[4] > 2.5
        assert sp[8] > 4.0
        assert "thread scaling" in res.table()
