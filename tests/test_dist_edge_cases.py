"""Edge cases of the distributed layer: degenerate splits, rank-only
layout changes, and long remap chains."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import HiSVSimEngine, IQSEngine
from repro.dist.analytic import LayoutOnlyState, exchange_step_stats
from repro.dist.exchange import swap_qubit_positions
from repro.dist.state import DistributedStateVector
from repro.runtime.comm import SimComm
from repro.sv.layout import QubitLayout
from repro.sv.simulator import random_state


class TestNonPowerOfTwoRanks:
    @pytest.mark.parametrize("ranks", [0, 3, 6, 12, -4])
    def test_comm_rejects(self, ranks):
        with pytest.raises(ValueError):
            SimComm(ranks)

    @pytest.mark.parametrize("ranks", [3, 6, 12])
    def test_engines_reject(self, ranks):
        with pytest.raises(ValueError):
            HiSVSimEngine(ranks)
        with pytest.raises(ValueError):
            IQSEngine(ranks)


class TestSingleRankDegenerate:
    """R=1: the whole state is one shard and nothing ever communicates."""

    def test_no_process_qubits(self):
        dsv = DistributedStateVector.zero(4, SimComm(1))
        assert dsv.process_bits == 0 and dsv.local_bits == 4
        assert dsv.process_qubits() == []
        assert dsv.local_qubits() == [0, 1, 2, 3]
        assert all(dsv.is_local(q) for q in range(4))

    def test_remap_is_traffic_free(self):
        state = random_state(4, seed=11)
        comm = SimComm(1)
        dsv = DistributedStateVector.from_full(state, comm)
        dsv.remap(QubitLayout([3, 2, 1, 0]))
        assert comm.stats.total_bytes == 0
        assert np.allclose(dsv.to_full(), state, atol=1e-12)

    def test_layout_only_matches(self):
        comm = SimComm(1)
        s = LayoutOnlyState(4, comm)
        s.remap(QubitLayout([3, 2, 1, 0]))
        assert comm.stats.total_bytes == 0
        lay = QubitLayout.identity(4)
        assert exchange_step_stats(lay, QubitLayout([3, 2, 1, 0]), 4) == (
            0,
            0,
            0,
            0,
        )


class TestProcessOnlyLayoutChange:
    """Layouts differing only in process positions relabel whole shards."""

    def test_process_swap_ships_full_shards(self):
        n, local = 6, 4
        old = QubitLayout.identity(n)
        new = swap_qubit_positions(old, 4, 5)  # both process-resident
        tb, tm, mb, mm = exchange_step_stats(old, new, local)
        shard_bytes = 16 << local
        # Ranks 0b01 and 0b10 trade places; 0b00 and 0b11 stay put.
        assert (tb, tm, mb, mm) == (2 * shard_bytes, 2, shard_bytes, 1)

    def test_matches_real_exchange(self):
        n, local = 6, 4
        comm = SimComm(4, validate_plans=True)
        state = random_state(n, seed=12)
        dsv = DistributedStateVector.from_full(state, comm)
        new = swap_qubit_positions(dsv.layout, 4, 5)
        comm.reset_stats()
        dsv.remap(new)
        real = comm.reset_stats()
        tb, tm, mb, mm = exchange_step_stats(QubitLayout.identity(n), new, local)
        assert (tb, tm, mb, mm) == (
            real.total_bytes,
            real.total_msgs,
            real.max_bytes_per_rank,
            real.max_msgs_per_rank,
        )
        assert np.allclose(dsv.to_full(), state, atol=1e-12)

    def test_three_process_bits_rotation(self):
        # Rotate three process positions: every rank moves, none keeps data.
        n, local = 7, 4
        old = QubitLayout.identity(n)
        perm = list(range(n))
        perm[4], perm[5], perm[6] = 5, 6, 4
        new = QubitLayout(perm)
        tb, tm, mb, mm = exchange_step_stats(old, new, local)
        shard_bytes = 16 << local
        # Fixed points of the rank rotation: ranks 0b000 and 0b111 only.
        assert tm == 8 - 2
        assert tb == tm * shard_bytes
        assert (mb, mm) == (shard_bytes, 1)


class TestRemapRoundTrips:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_from_full_remap_chain_to_full(self, data):
        n = 7
        state = random_state(n, seed=13)
        ranks = data.draw(st.sampled_from([2, 4, 8]))
        dsv = DistributedStateVector.from_full(state, SimComm(ranks))
        k = data.draw(st.integers(1, 4))
        for _ in range(k):
            perm = list(range(n))
            rnd = data.draw(st.randoms(use_true_random=False))
            rnd.shuffle(perm)
            dsv.remap(QubitLayout(perm))
        assert np.allclose(dsv.to_full(), state, atol=1e-12)
        assert dsv.norm() == pytest.approx(1.0)
