"""Fig. 4 — the paper's toy partitioning example, reproduced exactly.

"A toy example partitioning of bv graph with 6 qubits with qubit limit 4
using Nat (left) and dagP approach (right)": the figure shows Nat needing
five parts (GREEN/CYAN/ORANGE/PINK/GOLD) where dagP needs two
(GREEN/CYAN), and the text notes "DFS approach can return any number of
parts between these two examples".
"""

import numpy as np

from repro.circuits.generators import bv
from repro.partition import get_partitioner, validate_partition
from repro.sv import HierarchicalExecutor, StateVectorSimulator, zero_state


class TestFig4ToyExample:
    def setup_method(self):
        self.qc = bv(6)
        self.limit = 4

    def test_nat_needs_five_parts(self):
        p = get_partitioner("Nat").partition(self.qc, self.limit)
        assert p.num_parts == 5

    def test_dagp_needs_two_parts(self):
        p = get_partitioner("dagP").partition(self.qc, self.limit)
        assert p.num_parts == 2

    def test_dfs_lands_between(self):
        p = get_partitioner("DFS").partition(self.qc, self.limit)
        assert 2 <= p.num_parts <= 5

    def test_all_three_simulate_identically(self):
        ref = StateVectorSimulator(6)
        ref.run(self.qc)
        for strategy in ("Nat", "DFS", "dagP"):
            p = get_partitioner(strategy).partition(self.qc, self.limit)
            validate_partition(self.qc, p, raise_on_error=True)
            state = zero_state(6)
            HierarchicalExecutor().run(self.qc, p, state)
            assert np.allclose(state, ref.state, atol=1e-10), strategy
