"""Edge-case tests for the gather-free strided kernel path.

The strided path skips the gather matrix entirely for small fused
groups, applying each op through a bit-strided view of the flat state.
Its contract is strict: bit-identical results to the gather path (both
reduce to the same-shape GEMM), on every backend, for every operand
layout — non-adjacent targets, targets above the threaded row-block
split, control extraction, and diagonal/controlled combinations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.gates import make_gate
from repro.partition import get_partitioner
from repro.sv import (
    ArrayBackend,
    DEFAULT_STRIDED_MAX,
    HierarchicalExecutor,
    SerialBackend,
    ThreadedBackend,
    apply_gate_reference,
    apply_matrix,
    apply_matrix_strided,
    bytes_touched_gather_part,
    bytes_touched_strided,
    split_controls,
    strided_max_qubits,
    zero_state,
)

from conftest import random_circuit


def _random_state(num_qubits: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    state = rng.standard_normal(1 << num_qubits) + 1j * rng.standard_normal(
        1 << num_qubits
    )
    state /= np.linalg.norm(state)
    return state.astype(np.complex128)


def _random_unitary(dim: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((dim, dim)) + 1j * rng.standard_normal((dim, dim))
    q, _ = np.linalg.qr(m)
    return np.ascontiguousarray(q)


# ---------------------------------------------------------------------------
# split_controls
# ---------------------------------------------------------------------------


class TestSplitControls:
    def test_cx_peels_one_control(self):
        g = make_gate("cx", [0, 1])
        controls, targets, sub = split_controls(g.matrix(), g.qubits)
        assert controls == (0,)
        assert targets == (1,)
        np.testing.assert_array_equal(
            sub, np.array([[0, 1], [1, 0]], dtype=np.complex128)
        )

    def test_ccx_peels_two_controls(self):
        g = make_gate("ccx", [2, 0, 1])
        controls, targets, sub = split_controls(g.matrix(), g.qubits)
        assert set(controls) == {2, 0}
        assert targets == (1,)
        assert sub.shape == (2, 2)

    def test_dense_unitary_has_no_controls(self):
        m = _random_unitary(4, seed=1)
        controls, targets, sub = split_controls(m, (3, 5))
        assert controls == ()
        assert targets == (3, 5)
        assert sub is m or np.array_equal(sub, m)

    def test_near_identity_block_is_not_a_control(self):
        # The bit=0 block must be *exactly* identity — a 1e-16 smudge
        # disqualifies the operand, keeping extraction exact.
        g = make_gate("cx", [0, 1])
        m = np.array(g.matrix(), copy=True)
        m[0, 0] = 1.0 + 1e-16j
        controls, targets, _ = split_controls(m, (0, 1))
        assert controls == ()
        assert targets == (0, 1)


# ---------------------------------------------------------------------------
# apply_matrix_strided vs the gather-path kernels
# ---------------------------------------------------------------------------


class TestStridedKernel:
    N = 7

    def _check(self, matrix, qubits, diagonal=False, seed=0):
        state = _random_state(self.N, seed)
        via_gather = state.copy()
        apply_matrix(via_gather, matrix, qubits, self.N, diagonal=diagonal)
        via_strided = state.copy()
        apply_matrix_strided(
            via_strided, matrix, qubits, self.N, diagonal=diagonal
        )
        assert np.array_equal(via_gather, via_strided), (qubits, diagonal)

    def test_non_adjacent_targets(self):
        for qubits in ((0, 4), (1, 6), (6, 0), (2, 5)):
            self._check(_random_unitary(4, seed=11), qubits, seed=3)

    def test_top_and_bottom_qubit(self):
        self._check(_random_unitary(2, seed=5), (self.N - 1,))
        self._check(_random_unitary(2, seed=6), (0,))

    def test_three_qubit_dense(self):
        self._check(_random_unitary(8, seed=7), (0, 3, 6), seed=4)

    def test_controlled_dense(self):
        for order in ([0, 5], [5, 0], [3, 1]):
            g = make_gate("cx", order)
            self._check(g.matrix(), g.qubits, seed=5)
        g = make_gate("ccx", [6, 2, 4])
        self._check(g.matrix(), g.qubits, seed=6)

    def test_diagonal_and_controlled_diagonal(self):
        for gate in (
            make_gate("rz", [3], [0.7]),
            make_gate("cz", [1, 5]),
            make_gate("crz", [4, 0], [1.1]),
            make_gate("rzz", [2, 6], [0.4]),
            make_gate("ccz", [0, 3, 6]),
        ):
            self._check(gate.matrix(), gate.qubits, diagonal=True, seed=8)
            # Diagonal gates are also valid dense ops; both lanes agree.
            self._check(gate.matrix(), gate.qubits, diagonal=False, seed=8)

    def test_fully_controlled_phase_dense_lane(self):
        # cu1 is diagonal but the fusion planner may hand it to the
        # dense lane; every operand is then a control (1x1 active
        # block) and one control demotes back to a target so the work
        # stays a GEMM.
        g = make_gate("cu1", [5, 2], [0.9])
        self._check(g.matrix(), g.qubits, diagonal=False, seed=9)

    def test_matches_reference_kernels(self):
        state = zero_state(self.N)
        strided = zero_state(self.N)
        for gate in random_circuit(self.N, 24, seed=17):
            apply_gate_reference(state, gate, self.N)
            apply_matrix_strided(
                strided, gate.matrix(), gate.qubits, self.N,
                diagonal=gate.is_diagonal,
            )
        assert float(np.max(np.abs(state - strided))) < 1e-10


# ---------------------------------------------------------------------------
# Strided vs gather through the executor, across backends
# ---------------------------------------------------------------------------


def _run(qc, p, backend, **kwargs) -> np.ndarray:
    state = zero_state(qc.num_qubits)
    HierarchicalExecutor(backend=backend, **kwargs).run(qc, p, state)
    return state


class TestStridedVsGatherBackends:
    @pytest.mark.parametrize("seed", range(4))
    def test_serial_strided_bit_identical_to_gather(self, seed):
        qc = random_circuit(7, 18, seed=seed)
        p = get_partitioner("dagP").partition(qc, 5)
        gather = _run(qc, p, SerialBackend(strided_max=-1))
        strided = _run(qc, p, SerialBackend())
        assert np.array_equal(gather, strided)

    @pytest.mark.parametrize("seed", range(8))
    def test_threaded_strided_bit_identical_to_gather(self, seed):
        # The pinned contract is strided-vs-gather *within* a backend
        # (threaded-vs-serial was never universally bitwise: BLAS GEMM
        # results shift by an ulp when the column count changes, and the
        # two backends split rows differently).  min_parallel_elements=0
        # forces the row-blocked dispatch so the threaded strided lane
        # actually runs.
        qc = random_circuit(8, 20, seed=100 + seed)
        p = get_partitioner("dagP").partition(qc, 6)
        with ThreadedBackend(4, min_parallel_elements=0, strided_max=-1) as b:
            gather = _run(qc, p, b)
        with ThreadedBackend(4, min_parallel_elements=0) as b:
            strided = _run(qc, p, b)
        assert np.array_equal(gather, strided)

    def test_array_strided_bit_identical_to_gather(self):
        qc = random_circuit(7, 18, seed=23)
        p = get_partitioner("dagP").partition(qc, 5)
        with ArrayBackend(strided_max=-1) as gather_b:
            gather = _run(qc, p, gather_b)
        with ArrayBackend() as strided_b:
            strided = _run(qc, p, strided_b)
        assert np.array_equal(gather, strided)

    def test_top_qubit_targets_span_row_blocks(self):
        # Every gate touches the top qubit: the threaded strided view
        # degenerates to a single row and must fall back to the serial
        # strided sweep without error (and without losing accuracy).
        qc = random_circuit(7, 12, seed=41)
        gates = [
            make_gate("cx", [q, 6]) if q != 6 else make_gate("h", [6])
            for q in range(7)
        ]
        for g in gates:
            qc.append(g)
        p = get_partitioner("Nat").partition(qc, 6)
        serial = _run(qc, p, SerialBackend())
        with ThreadedBackend(4, min_parallel_elements=0) as b:
            threaded = _run(qc, p, b)
        assert float(np.max(np.abs(serial - threaded))) < 1e-12


# ---------------------------------------------------------------------------
# Configuration and traffic model
# ---------------------------------------------------------------------------


class TestStridedConfig:
    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_STRIDED_MAX", raising=False)
        assert strided_max_qubits() == DEFAULT_STRIDED_MAX
        monkeypatch.setenv("REPRO_KERNEL_STRIDED_MAX", "")
        assert strided_max_qubits() == DEFAULT_STRIDED_MAX  # empty = unset
        monkeypatch.setenv("REPRO_KERNEL_STRIDED_MAX", "4")
        assert strided_max_qubits() == 4
        monkeypatch.setenv("REPRO_KERNEL_STRIDED_MAX", "-1")
        assert strided_max_qubits() == -1

    def test_disable_via_env_forces_gather(self, monkeypatch):
        from repro.sv import ExecutionTrace

        monkeypatch.setenv("REPRO_KERNEL_STRIDED_MAX", "-1")
        qc = random_circuit(6, 10, seed=5)
        p = get_partitioner("Nat").partition(qc, 4)
        trace = ExecutionTrace()
        state = zero_state(6)
        HierarchicalExecutor(backend=SerialBackend()).run(
            qc, p, state, trace=trace
        )
        assert trace.strided_parts == 0
        assert trace.gathered_parts == p.num_parts

    def test_traffic_model_favors_strided_for_small_groups(self):
        n = 20
        # One 2-qubit op: the gather part moves table + gather + op +
        # scatter traffic; the strided sweep only reads/writes the state.
        assert bytes_touched_strided(n) < bytes_touched_gather_part(n, 1)
        # Controls shrink the touched slice further.
        assert bytes_touched_strided(n, 2) == bytes_touched_strided(n) // 4
