"""Wire-cutting pipeline tests (repro.cut).

The load-bearing property: for any circuit, cutting + fragment
evaluation + recombination must reproduce the uncut dense simulation to
1e-10 — across partitioner strategies, cut counts 1-3, fusion on/off
and serial/threaded backends.  Below ``REPRO_CUT_DENSE_WIDTH`` the
sampled counts must agree with the uncut path *exactly* (same seeded
draws).  The rest of the file pins the cutter's legality rules, the
16^k variant enumeration, a hand-computed contraction, the fingerprint
split that lets boundary variants share compiled plans, and the serve
manifest integration.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.generators import build
from repro.cut import (
    CutError,
    cut_run,
    enumerate_variants,
    find_cuts,
    interaction_graph,
    plan_from_assignment,
    quasi_probabilities,
    recombine_counts,
    recombine_expectations,
    recombine_state,
)
from repro.cut.evaluate import evaluate_fragments
from repro.cut.fragments import amplitude_variants, variant_circuit
from repro.cut.recombine import bond_tensor
from repro.serve import (
    BatchRunner,
    circuit_fingerprint,
    load_manifest,
    structural_fingerprint,
)
from repro.sv.simulator import StateVectorSimulator, sample_counts

from strategies import chained_circuits

ATOL = 1e-10


def uncut_state(qc: QuantumCircuit) -> np.ndarray:
    sim = StateVectorSimulator(qc.num_qubits)
    sim.run(qc)
    return sim.state


def fixed_chain(k: int, window: int = 4) -> tuple:
    """Deterministic k-cut chained circuit (window overlap = 1 qubit)."""
    w = window
    n = (k + 1) * (w - 1) + 1
    qc = QuantumCircuit(n, name=f"fixed_chain_{k}")
    assignment = []
    for i in range(k + 1):
        lo = i * (w - 1)
        hi = lo + w - 1
        qc.h(lo).cx(lo, lo + 1).rx(0.3 + 0.2 * i, lo + 1)
        qc.cz(lo + 1, lo + 2).rz(1.1 * i + 0.4, lo + 2).cx(hi - 1, hi)
        assignment.extend([i] * 6)
    return qc, assignment


def chain_of_cx(num_windows: int) -> tuple:
    """A cx ladder with one gate per window: ``num_windows - 1`` cuts."""
    n = num_windows + 1
    qc = QuantumCircuit(n, name=f"ladder_{n}")
    qc.h(0)
    for i in range(num_windows):
        qc.cx(i, i + 1)
    # h(0) joins the first window.
    assignment = [0] + list(range(num_windows))
    return qc, assignment


class TestDifferential:
    """cut + recombine == uncut dense state, across the whole matrix."""

    @pytest.mark.parametrize(
        "strategy,fuse,backend,threads",
        [
            ("dagP", True, None, None),
            ("dagP", False, None, None),
            ("dagP", True, "threaded", 2),
            ("Nat", True, None, None),
            ("Nat", False, "threaded", 2),
            ("DFS", True, None, None),
            ("DFS", False, None, None),
        ],
    )
    @settings(max_examples=8, deadline=None)
    @given(drawn=chained_circuits(min_cuts=1, max_cuts=3))
    def test_state_matches_uncut(self, drawn, strategy, fuse, backend, threads):
        qc, assignment, k = drawn
        plan = plan_from_assignment(qc, assignment, max_width=4)
        assert plan.num_cuts == k
        result = cut_run(
            qc,
            plan=plan,
            want_state=True,
            strategy=strategy,
            fuse=fuse,
            backend=backend,
            threads=threads,
        )
        err = float(np.max(np.abs(result.state - uncut_state(qc))))
        assert err < ATOL

    @pytest.mark.parametrize("strategy", ["DFS", "dagP"])
    @pytest.mark.parametrize("name", ["qnn", "cc", "bv"])
    def test_found_cuts_match_uncut(self, strategy, name):
        """find_cuts plans (not hand-built ones) recombine exactly too."""
        qc = build(name, 10)
        plan = find_cuts(qc, 7, strategy=strategy)
        assert plan.num_cuts >= 1
        assert max(plan.widths) <= 7
        result = cut_run(qc, plan=plan, want_state=True, strategy=strategy)
        err = float(np.max(np.abs(result.state - uncut_state(qc))))
        assert err < ATOL

    @settings(max_examples=8, deadline=None)
    @given(drawn=chained_circuits(min_cuts=1, max_cuts=2))
    def test_dense_counts_exactly_match_uncut_sampling(self, drawn):
        """Same seed, same draws: the dense path calls the identical
        sample_counts the uncut pipeline uses."""
        qc, assignment, _ = drawn
        plan = plan_from_assignment(qc, assignment, max_width=4)
        result = cut_run(qc, plan=plan, shots=96, seed=11)
        expected = sample_counts(uncut_state(qc), 96, seed=11)
        assert result.counts == expected

    def test_expectations_match_dense(self):
        qc, assignment = chain_of_cx(4)
        plan = plan_from_assignment(qc, assignment, max_width=2)
        state = uncut_state(qc)
        labels = ["Z" * qc.num_qubits, "X" * qc.num_qubits,
                  "ZI" * 2 + "I" * (qc.num_qubits - 4)]
        tensors, _ = evaluate_fragments(plan)
        got = recombine_expectations(plan, tensors, labels)
        from repro.sv.pauli import pauli_expectation

        for label, value in zip(labels, got):
            assert value == pytest.approx(
                pauli_expectation(state, label, qc.num_qubits), abs=ATOL
            )

    def test_quasi_probabilities_match_amplitude_path(self):
        qc, assignment = fixed_chain(1)
        plan = plan_from_assignment(qc, assignment, max_width=4)
        tensors, trace = evaluate_fragments(plan, mode="quasi")
        assert trace.mode == "quasi"
        quasi = quasi_probabilities(plan, tensors)
        dense = np.abs(uncut_state(qc)) ** 2
        assert np.max(np.abs(quasi - dense)) < 1e-8

    def test_worker_fanout_matches_serial(self):
        qc, assignment = chain_of_cx(3)
        plan = plan_from_assignment(qc, assignment, max_width=2)
        serial = cut_run(qc, plan=plan, want_state=True, workers=1)
        fanned = cut_run(qc, plan=plan, want_state=True, workers=3)
        assert np.allclose(serial.state, fanned.state, atol=1e-12)


class TestStreaming:
    """The wide-circuit sampler: exact, seeded, no 2^n object."""

    def _plan(self):
        qc, assignment = fixed_chain(2)
        plan = plan_from_assignment(qc, assignment, max_width=4)
        tensors, _ = evaluate_fragments(plan)
        return qc, plan, tensors

    def test_deterministic_and_complete(self):
        qc, plan, tensors = self._plan()
        a = recombine_counts(plan, tensors, 200, seed=5, dense_width=0)
        b = recombine_counts(plan, tensors, 200, seed=5, dense_width=0)
        assert a == b
        assert sum(a.values()) == 200

    def test_outcomes_lie_in_the_true_support(self):
        qc, plan, tensors = self._plan()
        probs = np.abs(uncut_state(qc)) ** 2
        counts = recombine_counts(plan, tensors, 300, seed=9, dense_width=0)
        for index in counts:
            assert probs[index] > 1e-18

    def test_distribution_tracks_dense_probabilities(self):
        qc, plan, tensors = self._plan()
        probs = np.abs(uncut_state(qc)) ** 2
        shots = 4000
        counts = recombine_counts(
            plan, tensors, shots, seed=3, dense_width=0
        )
        empirical = np.zeros_like(probs)
        for index, c in counts.items():
            empirical[index] = c / shots
        assert 0.5 * np.abs(empirical - probs).sum() < 0.08

    def test_too_many_cuts_rejected(self):
        qc, assignment = chain_of_cx(14)  # 13 cuts
        plan = plan_from_assignment(qc, assignment, max_width=2)
        tensors, _ = evaluate_fragments(plan)
        with pytest.raises(CutError, match="streaming sampler"):
            recombine_counts(plan, tensors, 10, seed=0, dense_width=0)

    def test_dense_width_env_refusal(self, monkeypatch):
        qc, assignment = chain_of_cx(3)
        plan = plan_from_assignment(qc, assignment, max_width=2)
        tensors, _ = evaluate_fragments(plan)
        monkeypatch.setenv("REPRO_CUT_DENSE_WIDTH", "2")
        with pytest.raises(CutError, match="dense recombine width"):
            recombine_state(plan, tensors)


class TestCutter:
    """Plan legality, cost accounting and the variant enumeration."""

    def test_noncontiguous_timeline_rejected(self):
        # Gate assignment A-B-A on qubit 1's timeline: quotient cycle.
        qc = QuantumCircuit(3).cx(0, 1).cx(1, 2).cx(0, 1)
        with pytest.raises(CutError):
            plan_from_assignment(qc, [0, 1, 0], max_width=2)

    def test_width_overflow_rejected(self):
        import dataclasses

        qc = QuantumCircuit(3).cx(0, 1).cx(1, 2)
        plan = plan_from_assignment(qc, [0, 1], max_width=2)
        shrunk = dataclasses.replace(plan, max_width=1)
        with pytest.raises(CutError, match="exceeds"):
            shrunk.validate()

    def test_max_width_below_gate_arity_rejected(self):
        qc = QuantumCircuit(3).ccx(0, 1, 2)
        with pytest.raises(CutError, match="widest gate"):
            find_cuts(qc, 2)

    def test_cut_budget_rejected(self):
        qc = build("qaoa", 12)
        with pytest.raises(CutError, match="budget"):
            find_cuts(qc, 8, max_cuts=3)

    def test_interaction_graph_weights(self):
        qc = QuantumCircuit(3).h(0).cx(0, 1).cx(0, 1).cx(1, 2)
        assert interaction_graph(qc) == {(0, 1): 2, (1, 2): 1}

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_variant_enumeration_is_16_to_the_k(self, k):
        qc, assignment = chain_of_cx(k + 1)
        plan = plan_from_assignment(qc, assignment, max_width=2)
        assert plan.num_cuts == k
        assert plan.num_variants == 16 ** k
        assert len(list(enumerate_variants(plan))) == 16 ** k

    def test_amplitude_variant_count_is_2_to_incoming(self):
        qc, assignment = chain_of_cx(3)
        plan = plan_from_assignment(qc, assignment, max_width=2)
        for frag in plan.fragments:
            variants = list(amplitude_variants(frag))
            assert len(variants) == 2 ** len(frag.in_cuts)

    def test_hand_computed_bell_contraction(self):
        """2-qubit Bell pair, one cut: contract the bond by hand."""
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        plan = plan_from_assignment(qc, [0, 1], max_width=2)
        tensors, _ = evaluate_fragments(plan)
        a0 = bond_tensor(plan, tensors[0])  # upstream: H on the cut wire
        a1 = bond_tensor(plan, tensors[1])  # downstream: CX off the prep
        r = 1 / np.sqrt(2)
        assert a0.shape == (2, 1)
        assert np.allclose(a0[:, 0], [r, r], atol=1e-12)
        # cx|00> = |00>, cx|10> = |11> (qubit 0 is the control).
        assert a1.shape == (2, 4)
        assert np.allclose(a1[0], [1, 0, 0, 0], atol=1e-12)
        assert np.allclose(a1[1], [0, 0, 0, 1], atol=1e-12)
        state = a0[0, 0] * a1[0] + a0[1, 0] * a1[1]
        assert np.allclose(state, [r, 0, 0, r], atol=1e-12)
        assert np.allclose(
            recombine_state(plan, tensors), state, atol=1e-12
        )

    def test_three_qubit_hand_contraction(self):
        """GHZ via two fragments: psi = sum_b A0(x01; b) A1(x2; b)."""
        qc = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        plan = plan_from_assignment(qc, [0, 0, 1], max_width=2)
        tensors, _ = evaluate_fragments(plan)
        a0 = bond_tensor(plan, tensors[0])
        a1 = bond_tensor(plan, tensors[1])
        r = 1 / np.sqrt(2)
        # Upstream owns terminal qubit 0; downstream owns qubits 1 and 2
        # (the cut wire's final value lives downstream).
        assert a0.shape == (2, 2) and a1.shape == (2, 4)
        by_hand = np.zeros(8, dtype=complex)
        for b in range(2):
            for x0 in range(2):
                for x12 in range(4):
                    by_hand[x0 | (x12 << 1)] += a0[b, x0] * a1[b, x12]
        ghz = np.zeros(8, dtype=complex)
        ghz[0] = ghz[7] = r
        assert np.allclose(by_hand, ghz, atol=1e-12)
        assert np.allclose(recombine_state(plan, tensors), ghz, atol=1e-12)

    def test_cut_run_needs_plan_or_width(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        with pytest.raises(CutError, match="max_width"):
            cut_run(qc)

    def test_plan_for_other_circuit_rejected(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        other = QuantumCircuit(2).h(0).cx(0, 1).x(1)
        plan = plan_from_assignment(qc, [0, 1], max_width=2)
        with pytest.raises(CutError, match="different circuit"):
            cut_run(other, plan=plan)


class TestGuards:
    """Error paths: every misuse fails loudly with a CutError."""

    def _plan(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        return qc, plan_from_assignment(qc, [0, 1], max_width=2)

    def test_validate_rejects_duplicate_and_missing_gates(self):
        import dataclasses

        _, plan = self._plan()
        dup = dataclasses.replace(
            plan,
            fragments=(plan.fragments[0],) * 2 + plan.fragments[1:],
        )
        with pytest.raises(CutError, match="fragments"):
            dup.validate()
        short = dataclasses.replace(plan, fragments=plan.fragments[:1])
        with pytest.raises(CutError, match="missing"):
            short.validate()

    def test_validate_rejects_backward_cut(self):
        import dataclasses

        _, plan = self._plan()
        flipped = dataclasses.replace(
            plan.cuts[0], from_fragment=1, to_fragment=0
        )
        bad = dataclasses.replace(plan, cuts=(flipped,))
        with pytest.raises(CutError, match="backward"):
            bad.validate()

    def test_variant_circuit_arity_checked(self):
        _, plan = self._plan()
        with pytest.raises(CutError, match="preparations"):
            variant_circuit(plan, plan.fragments[1], (), ())
        with pytest.raises(CutError, match="bases"):
            variant_circuit(plan, plan.fragments[0], (), ())

    def test_unknown_boundary_labels_rejected(self):
        from repro.cut.fragments import meas_angles, prep_angles

        with pytest.raises(CutError):
            prep_angles("minus")
        with pytest.raises(CutError):
            meas_angles("W")

    def test_unknown_evaluation_mode_rejected(self):
        _, plan = self._plan()
        with pytest.raises(CutError, match="mode"):
            evaluate_fragments(plan, mode="nope")

    def test_bond_tensor_needs_amplitude_mode(self):
        _, plan = self._plan()
        tensors, _ = evaluate_fragments(plan, mode="quasi")
        # The upstream fragment's amplitude variant measures in "I";
        # quasi mode only ran the physical Z/X/Y rotations.
        with pytest.raises(CutError, match="amplitude variant"):
            bond_tensor(plan, tensors[0])

    def test_tensor_count_mismatch_rejected(self):
        _, plan = self._plan()
        tensors, _ = evaluate_fragments(plan)
        with pytest.raises(CutError, match="tensors for"):
            recombine_state(plan, tensors[:1])
        with pytest.raises(CutError, match="tensors for"):
            quasi_probabilities(plan, tensors[:1])

    def test_contraction_cut_ceiling(self):
        qc, assignment = chain_of_cx(22)  # 21 cuts, 2q fragments
        plan = plan_from_assignment(qc, assignment, max_width=2)
        tensors, _ = evaluate_fragments(plan)
        with pytest.raises(CutError, match="bond assignments"):
            recombine_state(plan, tensors)

    def test_stream_counts_needs_a_shot(self):
        _, plan = self._plan()
        tensors, _ = evaluate_fragments(plan)
        with pytest.raises(ValueError, match="shots"):
            recombine_counts(plan, tensors, 0, dense_width=0)

    def test_quasi_refuses_beyond_dense_width(self, monkeypatch):
        _, plan = self._plan()
        tensors, _ = evaluate_fragments(plan, mode="quasi")
        monkeypatch.setenv("REPRO_CUT_DENSE_WIDTH", "1")
        with pytest.raises(CutError, match="quasiprobability"):
            quasi_probabilities(plan, tensors)

    def test_idle_qubits_in_observables(self):
        """A qubit no gate touches is |0>: Z gives +1, X/Y kill the term."""
        qc = QuantumCircuit(3).h(0).cx(0, 1)  # qubit 2 idle
        plan = plan_from_assignment(qc, [0, 1], max_width=2)
        tensors, _ = evaluate_fragments(plan)
        zz_z, zz_x = recombine_expectations(
            plan, tensors, ["ZZZ", "ZZX"]
        )
        assert zz_z == pytest.approx(1.0, abs=ATOL)
        assert zz_x == 0.0

    def test_amplitude_variant_helper(self):
        from repro.cut.fragments import num_amplitude_variants

        _, plan = self._plan()
        assert num_amplitude_variants(plan.fragments[0]) == 1
        assert num_amplitude_variants(plan.fragments[1]) == 2


class TestFingerprints:
    """Boundary variants: distinct identity, shared structure."""

    def _variants(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        plan = plan_from_assignment(qc, [0, 1], max_width=2)
        frag = plan.fragments[1]
        zero = variant_circuit(plan, frag, ("zero",), ())
        one = variant_circuit(plan, frag, ("one",), ())
        return zero, one

    def test_identity_differs_structure_shared(self):
        zero, one = self._variants()
        assert circuit_fingerprint(zero) != circuit_fingerprint(one)
        assert structural_fingerprint(zero) == structural_fingerprint(one)

    def test_untagged_circuits_keep_old_fingerprint(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        assert circuit_fingerprint(qc) == structural_fingerprint(qc)

    def test_variants_share_partition_and_structure(self):
        """One fragment's whole variant set pays partitioning once."""
        qc, assignment = chain_of_cx(2)
        plan = plan_from_assignment(qc, assignment, max_width=2)
        _, trace = evaluate_fragments(plan)
        assert trace.variants_evaluated > plan.num_fragments
        assert trace.partitions_computed == plan.num_fragments
        assert trace.partition_hits == (
            trace.variants_evaluated - plan.num_fragments
        )
        assert trace.plans_bound == trace.variants_evaluated


class TestServeIntegration:
    """Cut jobs ride the ordinary batch manifest."""

    def test_manifest_cut_job_runs(self):
        jobs, options = load_manifest({
            "jobs": [{
                "id": "wide",
                "circuit": {"generator": "qnn", "qubits": 10},
                "shots": 32,
                "observables": ["ZZIIIIIIII"],
                "cut": {"max_width": 7},
            }],
        })
        report = BatchRunner(**options).run(jobs)
        res = report.results[0]
        assert res.error is None
        assert sum(res.counts.values()) == 32
        assert res.num_parts >= 2  # fragments, not parts
        state = uncut_state(build("qnn", 10))
        from repro.sv.pauli import pauli_expectation

        assert res.expectations[0] == pytest.approx(
            pauli_expectation(state, "ZZIIIIIIII", 10), abs=ATOL
        )

    def test_manifest_cut_counts_match_uncut_job(self):
        """Below the dense width a cut job's counts equal an uncut job's."""
        base = {
            "id": "j",
            "circuit": {"generator": "cc", "qubits": 10},
            "shots": 64,
            "seed": 13,
        }
        jobs, _ = load_manifest({
            "jobs": [base, {**base, "id": "cutj", "cut": {"max_width": 7}}],
        })
        report = BatchRunner().run(jobs)
        uncut, cut = report.results
        assert uncut.error is None and cut.error is None
        assert cut.counts == uncut.counts

    def test_bad_cut_spec_rejected(self):
        with pytest.raises(ValueError, match="max_width"):
            load_manifest({
                "jobs": [{
                    "id": "bad",
                    "circuit": {"generator": "bv", "qubits": 6},
                    "cut": {"max_width": 1},
                }],
            })


class TestWideCircuits:
    """The regime cutting exists for: wider than the dense budget."""

    def test_30q_counts_and_expectations(self):
        qc = build("qnn", 30)
        plan = find_cuts(qc, 16)
        assert max(plan.widths) <= 16
        label = "ZZ" + "I" * 28
        result = cut_run(qc, plan=plan, shots=64, seed=2,
                         observables=[label])
        assert sum(result.counts.values()) == 64
        assert all(0 <= i < 2 ** 30 for i in result.counts)
        assert -1.0 <= result.expectations[0] <= 1.0

    def test_30q_two_plans_agree(self):
        """Independent cut plans are self-consistent at 1e-10."""
        qc = build("qnn", 30)
        labels = ["ZZ" + "I" * 28, "I" * 28 + "XX", "Z" + "I" * 29]
        a = cut_run(qc, max_width=16, observables=labels)
        b = cut_run(qc, max_width=20, observables=labels)
        assert a.plan.widths != b.plan.widths
        for va, vb in zip(a.expectations, b.expectations):
            assert va == pytest.approx(vb, abs=ATOL)
