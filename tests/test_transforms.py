"""Circuit transform tests: fusion, inversion, remapping, part export."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import generators
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import gate_matrix
from repro.circuits.qasm import loads
from repro.circuits.transforms import (
    decompose_u3,
    decompose_unitary_1q,
    fuse_single_qubit_runs,
    inverse_circuit,
    remap_circuit,
)
from repro.partition import get_partitioner, validate_partition
from repro.partition.export import export_parts, part_subcircuit
from repro.sv.simulator import StateVectorSimulator, random_state

from conftest import SUITE_SMALL, random_circuit


def state_of(qc, initial=None):
    sim = StateVectorSimulator(qc.num_qubits, initial_state=initial)
    sim.run(qc)
    return sim.state


class TestDecomposeU3:
    @pytest.mark.parametrize(
        "name,params",
        [("h", ()), ("x", ()), ("rx", (0.7,)), ("ry", (1.2,)), ("sx", ())],
    )
    def test_exact_cases(self, name, params):
        m = gate_matrix(name, params)
        out = decompose_u3(m)
        if out is not None:
            assert np.allclose(gate_matrix("u3", out), m, atol=1e-9)

    def test_u3_roundtrip(self):
        m = gate_matrix("u3", (0.4, 1.1, -0.3))
        out = decompose_u3(m)
        assert out is not None
        assert np.allclose(gate_matrix("u3", out), m, atol=1e-9)

    def test_global_phase_rejected(self):
        # rz carries a global phase u3 cannot express: e^{-i t/2} diag form.
        m = gate_matrix("rz", (0.8,))
        out = decompose_u3(m)
        if out is not None:  # only accept exact reproductions
            assert np.allclose(gate_matrix("u3", out), m, atol=1e-9)

    def test_shape_check(self):
        with pytest.raises(ValueError):
            decompose_u3(np.eye(4))

    def test_non_unitary_clearly_rejected(self):
        shear = np.array([[1.0, 1.0], [0.0, 1.0]], dtype=np.complex128)
        with pytest.raises(ValueError, match="not unitary"):
            decompose_unitary_1q(shear)

    def test_near_unitary_is_tolerance_failure_not_nonunitary(self):
        # Regression: a unitary perturbed by ~1e-8 used to raise the
        # misleading "matrix is not unitary"; it must now raise a distinct
        # tolerance error at the default atol and succeed at a looser one.
        m = gate_matrix("u3", (0.9, 0.4, -1.3))
        noisy = m + 1e-8 * np.array([[1, -1], [1j, 1]], dtype=np.complex128)
        with pytest.raises(ValueError, match="atol"):
            decompose_unitary_1q(noisy)
        alpha, theta, phi, lam = decompose_unitary_1q(noisy, atol=1e-6)
        rebuilt = np.exp(1j * alpha) * gate_matrix("u3", (theta, phi, lam))
        assert np.allclose(rebuilt, noisy, atol=1e-6)

    def test_atol_looser_than_unitarity_gate_wins(self):
        # An atol above the fixed unitarity limit loosens that gate too:
        # a ~1e-5-perturbed unitary decomposes at atol=1e-4.
        m = gate_matrix("u3", (0.9, 0.4, -1.3))
        noisy = m + 1e-5 * np.array([[1, 1], [-1, 1j]], dtype=np.complex128)
        with pytest.raises(ValueError):
            decompose_unitary_1q(noisy)
        alpha, theta, phi, lam = decompose_unitary_1q(noisy, atol=1e-4)
        rebuilt = np.exp(1j * alpha) * gate_matrix("u3", (theta, phi, lam))
        assert np.allclose(rebuilt, noisy, atol=1e-4)


class TestFusion:
    @pytest.mark.parametrize("name,n", SUITE_SMALL)
    def test_fused_circuit_same_state(self, name, n):
        qc = generators.build(name, n)
        fused = fuse_single_qubit_runs(qc)
        assert np.allclose(state_of(fused), state_of(qc), atol=1e-9)

    def test_fusion_reduces_gate_count(self):
        qc = QuantumCircuit(2)
        for _ in range(3):
            qc.h(0).t(0).h(0).s(0)  # 12-gate run on one qubit
        qc.cx(0, 1)
        fused = fuse_single_qubit_runs(qc)
        # A run always fuses to at most 3 gates (u3 [+ rz + u1]).
        assert len(fused) <= 4

    def test_fusion_never_reorders_across_2q_gates(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).h(0)
        fused = fuse_single_qubit_runs(qc)
        names = [g.name for g in fused]
        assert "cx" in names
        assert names.index("cx") == 1  # still in the middle

    def test_fusion_is_orthogonal_to_partitioning(self):
        """The paper's orthogonality claim: fusion composes with the
        partitioned pipeline unchanged."""
        qc = generators.build("qnn", 9)
        fused = fuse_single_qubit_runs(qc)
        p = get_partitioner("dagP").partition(fused, 6)
        assert validate_partition(fused, p).ok
        from repro.sv.hier import HierarchicalExecutor
        from repro.sv.simulator import zero_state

        st_ = zero_state(9)
        HierarchicalExecutor().run(fused, p, st_)
        assert np.allclose(st_, state_of(qc), atol=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_property_fusion_preserves_state(self, seed):
        qc = random_circuit(5, 25, seed=seed)
        fused = fuse_single_qubit_runs(qc)
        assert np.allclose(state_of(fused), state_of(qc), atol=1e-9)
        assert len(fused) <= len(qc)


class TestInverse:
    @pytest.mark.parametrize("name,n", SUITE_SMALL)
    def test_inverse_restores_state(self, name, n):
        qc = generators.build(name, n)
        inv = inverse_circuit(qc)
        init = random_state(n, seed=13)
        state = state_of(qc, initial=init)
        sim = StateVectorSimulator(n, initial_state=state)
        sim.run(inv)
        assert np.allclose(sim.state, init, atol=1e-8)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 9999))
    def test_property_inverse(self, seed):
        qc = random_circuit(5, 20, seed=seed)
        inv = inverse_circuit(qc)
        init = random_state(5, seed=seed)
        out = state_of(inv, initial=state_of(qc, initial=init))
        assert np.allclose(out, init, atol=1e-8)


class TestRemap:
    def test_remap_widens_register(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        out = remap_circuit(qc, {0: 5, 1: 2}, num_qubits=8)
        assert out.num_qubits == 8
        assert out[0].qubits == (5, 2)

    def test_non_injective_rejected(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        with pytest.raises(ValueError):
            remap_circuit(qc, {0: 3, 1: 3})


class TestPartExport:
    def _setup(self):
        qc = generators.build("qaoa", 8)
        p = get_partitioner("dagP").partition(qc, 5)
        return qc, p

    def test_parts_cover_all_gates(self):
        qc, p = self._setup()
        files = export_parts(qc, p)
        assert sum(len(f.circuit) for f in files) == len(qc)

    def test_qubit_slots_compact(self):
        qc, p = self._setup()
        for f in export_parts(qc, p):
            used = f.circuit.qubits_used()
            assert used == tuple(range(len(used)))

    def test_local_model_padding(self):
        qc, p = self._setup()
        files = export_parts(qc, p, local_qubits=7)
        assert all(f.circuit.num_qubits == 7 for f in files)

    def test_undersized_local_model_rejected(self):
        qc, p = self._setup()
        too_small = p.max_working_set() - 1
        with pytest.raises(ValueError):
            part_subcircuit(
                qc,
                p,
                max(
                    range(p.num_parts),
                    key=lambda i: p.parts[i].working_set_size,
                ),
                local_qubits=too_small,
            )

    def test_qasm_files_written_and_parse(self, tmp_path):
        qc, p = self._setup()
        export_parts(qc, p, directory=str(tmp_path))
        names = sorted(os.listdir(tmp_path))
        assert names == [f"part_{i:03d}.qasm" for i in range(p.num_parts)]
        back = loads(open(tmp_path / "part_000.qasm").read())
        assert len(back) == p.parts[0].num_gates

    def test_semantics_preserved_through_export(self):
        """Executing the exported parts through gather slots must equal the
        original circuit (the hybrid flow's correctness condition)."""
        qc, p = self._setup()
        n = qc.num_qubits
        from repro.sv.kernels import apply_gate
        from repro.sv.layout import gather_index_table
        from repro.sv.simulator import zero_state

        state = zero_state(n)
        for f in export_parts(qc, p):
            w = len(f.qubit_map)
            inner_qubits = sorted(f.qubit_map, key=f.qubit_map.get)
            table = gather_index_table(n, inner_qubits)
            inner = state[table]
            for g in f.circuit:
                from repro.sv.kernels import apply_gate_batched

                apply_gate_batched(inner, g, w)
            state[table] = inner
        assert np.allclose(state, state_of(qc), atol=1e-9)
