"""Partition quality metric tests."""

import pytest

from repro.circuits import generators
from repro.circuits.circuit import QuantumCircuit
from repro.partition import Partition, get_partitioner
from repro.partition.metrics import evaluate_partition


class TestEvaluate:
    def _metrics(self, name="ising", n=10, limit=6, strategy="dagP"):
        qc = generators.build(name, n)
        p = get_partitioner(strategy).partition(qc, limit)
        return qc, p, evaluate_partition(qc, p)

    def test_basic_fields(self):
        qc, p, m = self._metrics()
        assert m.num_parts == p.num_parts
        assert m.max_working_set == p.max_working_set()
        assert 0 < m.fill_factor <= 1.0
        assert m.gates_per_part_min <= m.gates_per_part_max
        assert sum(p.gates_per_part()) == len(qc)

    def test_edge_cut_bounds(self):
        qc, p, m = self._metrics()
        from repro.partition.base import gate_dependency_edges

        assert 0 <= m.edge_cut <= len(gate_dependency_edges(qc))
        assert 0.0 <= m.edge_cut_fraction <= 1.0

    def test_single_part_extremes(self):
        qc = generators.build("bv", 8)
        p = get_partitioner("dagP").partition(qc, 8)
        m = evaluate_partition(qc, p)
        assert m.num_parts == 1
        assert m.edge_cut == 0
        assert m.mean_consecutive_overlap == 0.0
        assert m.estimated_moved_fraction == 0.0

    def test_empty_partition(self):
        qc = QuantumCircuit(2)
        p = Partition.from_assignment(qc, [], 2, "t")
        m = evaluate_partition(qc, p)
        assert m.num_parts == 0

    def test_dagp_cuts_no_more_than_nat(self):
        """dagP's global view should find parts at least as coherent."""
        qc = generators.build("ising", 12)
        nat = evaluate_partition(qc, get_partitioner("Nat").partition(qc, 7))
        dagp = evaluate_partition(qc, get_partitioner("dagP").partition(qc, 7))
        assert dagp.num_parts <= nat.num_parts

    def test_moved_fraction_tracks_overlap(self):
        # Full overlap between consecutive parts => nothing moves.
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).h(1).cx(1, 0)
        p = Partition.from_assignment(qc, [0, 0, 1, 1], limit=2, strategy="t")
        m = evaluate_partition(qc, p)
        assert m.estimated_moved_fraction == 0.0

    def test_summary_renders(self):
        _, _, m = self._metrics()
        s = m.summary()
        assert "parts=" in s and "cut=" in s and "sweeps=" in s


class TestFusedCost:
    def test_fused_cost_fields(self):
        qc = generators.build("qft", 10)
        p = get_partitioner("dagP").partition(qc, 7)
        m = evaluate_partition(qc, p)
        assert m.sweeps_unfused == len(qc)
        assert 0 < m.sweeps_fused < m.sweeps_unfused
        assert m.fusion_factor > 1.0
        assert m.flops_unfused > 0 and m.flops_fused > 0

    def test_cap_one_disables_dense_fusion_gains(self):
        qc = generators.build("grover", 9)
        p = get_partitioner("dagP").partition(qc, 6)
        wide = evaluate_partition(qc, p, max_fused_qubits=5)
        narrow = evaluate_partition(qc, p, max_fused_qubits=1)
        assert wide.sweeps_fused <= narrow.sweeps_fused

    def test_unfused_flops_match_kernel_model(self):
        from repro.sv.kernels import flops_for_gate

        qc = generators.build("bv", 8)
        p = get_partitioner("Nat").partition(qc, 5)
        m = evaluate_partition(qc, p)
        expect = sum(
            flops_for_gate(g.num_qubits, 8, g.is_diagonal) for g in qc
        )
        assert m.flops_unfused == expect

    def test_empty_partition_zero_cost(self):
        qc = QuantumCircuit(2)
        p = Partition.from_assignment(qc, [], 2, "t")
        m = evaluate_partition(qc, p)
        assert m.sweeps_fused == 0 and m.flops_fused == 0
        assert m.fusion_factor == 0.0
