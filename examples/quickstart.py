#!/usr/bin/env python
"""Quickstart: build a circuit, partition it, simulate it three ways.

Demonstrates the three execution tiers of the library on a GHZ + phase
circuit:

1. flat reference simulation,
2. hierarchical (Gather-Execute-Scatter) simulation of a dagP partition,
3. simulated multi-node execution with communication accounting.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import QuantumCircuit
from repro.dist import HiSVSimEngine, IQSEngine
from repro.partition import get_partitioner, validate_partition
from repro.sv import HierarchicalExecutor, StateVectorSimulator, zero_state


def build_circuit(n: int = 12) -> QuantumCircuit:
    """GHZ preparation followed by phase rotations and an entangling mesh."""
    qc = QuantumCircuit(n, name="quickstart")
    qc.h(0)
    for i in range(n - 1):
        qc.cx(i, i + 1)
    for q in range(n):
        qc.rz(0.1 * (q + 1), q)
    for i in range(0, n - 1, 2):
        qc.cx(i, i + 1)
        qc.rx(0.3, i + 1)
    return qc


def main() -> None:
    qc = build_circuit()
    n = qc.num_qubits
    print(f"circuit: {qc.name}, {n} qubits, {len(qc)} gates, depth {qc.depth()}")

    # --- 1. flat reference ------------------------------------------------
    ref = StateVectorSimulator(n)
    ref.run(qc)
    print(f"flat simulation done; <Z_0> = {ref.expectation_z(0):+.4f}")

    # --- 2. hierarchical execution of an acyclic partition ---------------
    limit = 8  # inner state vectors hold 2^8 amplitudes
    partition = get_partitioner("dagP").partition(qc, limit)
    report = validate_partition(qc, partition)
    assert report.ok, report.problems
    print(
        f"dagP partition: {partition.num_parts} parts, "
        f"working sets {[p.working_set_size for p in partition.parts]}"
    )
    state = zero_state(n)
    HierarchicalExecutor().run(qc, partition, state)
    fidelity = abs(np.vdot(state, ref.state)) ** 2
    print(f"hierarchical execution fidelity vs flat: {fidelity:.12f}")

    # --- 3. simulated multi-node run --------------------------------------
    ranks = 8
    engine = HiSVSimEngine(ranks)
    local = n - (ranks.bit_length() - 1)
    dist_partition = get_partitioner("dagP").partition(qc, local)
    dist_state, run_report = engine.run(qc, dist_partition)
    assert np.allclose(dist_state.to_full(), ref.state, atol=1e-9)
    print(f"\nHiSVSIM on {ranks} virtual ranks: {run_report.summary()}")

    _, iqs_report = IQSEngine(ranks).run(qc)
    print(f"IQS baseline:                {iqs_report.summary()}")
    print(
        f"\nimprovement factor (IQS/HiSVSIM): "
        f"{iqs_report.total_seconds / run_report.total_seconds:.2f}x"
    )


if __name__ == "__main__":
    main()
