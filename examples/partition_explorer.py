#!/usr/bin/env python
"""Domain example: inspect how each strategy partitions a QFT circuit.

Prints the DAG statistics, each strategy's part structure (gates, working
sets, qubit overlap between consecutive parts — the quantity that drives
exchange volume), validates every partition, and estimates the resulting
cache behaviour with the analytic sweep model (the Table II machinery).

Run:  python examples/partition_explorer.py [num_qubits] [limit]
"""

import sys

from repro.analysis.tables import render_table
from repro.cachesim import analyze_sweeps, sweeps_for_flat, sweeps_for_partition
from repro.circuits.generators import qft
from repro.dag import build_dag, dag_stats
from repro.partition import get_partitioner, validate_partition
from repro.runtime.machine import WORKSTATION_LIKE


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    limit = int(sys.argv[2]) if len(sys.argv) > 2 else 12
    qc = qft(n)
    print(f"circuit: qft_{n} ({len(qc)} gates), working-set limit {limit}")
    stats = dag_stats(build_dag(qc))
    print(
        f"DAG: {stats['nodes']} nodes ({stats['gate_nodes']} gates), "
        f"{stats['edges']} edges, critical path {stats['critical_path']}\n"
    )

    flat_prof = analyze_sweeps(sweeps_for_flat(qc))
    flat_time = flat_prof.execution_seconds(WORKSTATION_LIKE)
    print(f"flat execution model: {flat_time:.3f}s (every gate sweeps DRAM)\n")

    for strategy in ("Nat", "DFS", "dagP"):
        partition = get_partitioner(strategy).partition(qc, limit)
        validate_partition(qc, partition, raise_on_error=True)
        rows = []
        prev_qubits = None
        for i, part in enumerate(partition.parts):
            overlap = (
                len(set(part.qubits) & prev_qubits) if prev_qubits is not None else "-"
            )
            rows.append(
                (
                    f"P{i}",
                    part.num_gates,
                    part.working_set_size,
                    overlap,
                )
            )
            prev_qubits = set(part.qubits)
        prof = analyze_sweeps(sweeps_for_partition(qc, partition))
        t = prof.execution_seconds(WORKSTATION_LIKE)
        print(
            render_table(
                ["part", "gates", "working set", "overlap w/ prev"],
                rows,
                title=(
                    f"{strategy}: {partition.num_parts} parts, "
                    f"modelled time {t:.3f}s "
                    f"({flat_time / t:.2f}x vs flat)"
                ),
            )
        )


if __name__ == "__main__":
    main()
