#!/usr/bin/env python
"""Domain example: strong-scaling study of a Grover search workload.

Reproduces the paper's Sec. V-C methodology on one circuit: sweep the
virtual-rank count, compare the three partitioning strategies against the
IQS baseline, and report runtime, communication share and improvement
factors — the raw material of Figs. 5-8.

The engines run in dry-run mode (closed-form exchange accounting), so the
sweep works at paper widths on a laptop.

Run:  python examples/distributed_scaling.py [num_qubits]
"""

import sys

from repro.analysis.tables import render_table
from repro.circuits.generators import grover
from repro.dist import HiSVSimEngine, IQSEngine
from repro.partition import get_partitioner


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    qc = grover(n)
    qc.name = f"grover_{n}"
    print(f"workload: {qc.name}, {len(qc)} gates\n")

    rows = []
    for ranks in (4, 16, 64):
        local = n - (ranks.bit_length() - 1)
        _, iqs = IQSEngine(ranks, dry_run=True).run(qc)
        for strategy in ("Nat", "DFS", "dagP"):
            partition = get_partitioner(strategy).partition(qc, local)
            _, rep = HiSVSimEngine(ranks, dry_run=True).run(qc, partition)
            rows.append(
                (
                    ranks,
                    strategy,
                    partition.num_parts,
                    round(rep.total_seconds, 4),
                    f"{rep.comm_ratio:.1%}",
                    round(iqs.total_seconds / rep.total_seconds, 2),
                )
            )
        rows.append(
            (
                ranks,
                "IQS",
                "-",
                round(iqs.total_seconds, 4),
                f"{iqs.comm_ratio:.1%}",
                1.0,
            )
        )
    print(
        render_table(
            ["ranks", "algorithm", "parts", "time (s)", "comm share", "vs IQS"],
            rows,
            title=f"Strong scaling, {qc.name} (simulated cluster)",
        )
    )
    print(
        "Expected shape (paper Figs. 5-8): dagP needs the fewest parts,\n"
        "carries the lowest communication share, and its advantage over\n"
        "IQS grows with the rank count."
    )


if __name__ == "__main__":
    main()
