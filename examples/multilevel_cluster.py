#!/usr/bin/env python
"""Domain example: multi-level partitioning on a simulated cluster.

Walks the paper's Sec. IV/V-D pipeline on a ripple-carry adder: level-1
partitioning sized for the per-rank shard, level-2 partitioning sized for
the LLC, and a side-by-side of single-level vs multi-level simulated
execution (the Fig. 10 experiment for one circuit), plus a hybrid GPU
estimate (Sec. VI) for the same workload.

Run:  python examples/multilevel_cluster.py
"""

import math

from repro.circuits.generators import adder
from repro.dist import HiSVSimEngine, IQSEngine
from repro.hybrid import estimate_hybrid, estimate_hyquas_baseline
from repro.partition import DagPPartitioner, multilevel_partition
from repro.runtime.machine import FRONTERA_LIKE


def main() -> None:
    n, ranks = 30, 64
    qc = adder(n)
    qc.name = f"adder_{n}"
    p_bits = ranks.bit_length() - 1
    local = n - p_bits
    llc_limit = int(math.log2(FRONTERA_LIKE.l3_bytes / 16))
    limit2 = min(llc_limit, local - 1)
    print(
        f"{qc.name}: {len(qc)} gates on {ranks} virtual ranks "
        f"({local} local qubits; level-2 limit {limit2} for a "
        f"{FRONTERA_LIKE.l3_bytes >> 20} MB LLC)\n"
    )

    partitioner = DagPPartitioner()
    partition = partitioner.partition(qc, local)
    ml = multilevel_partition(qc, partitioner, local, limit2)
    print(
        f"level 1: {partition.num_parts} parts; "
        f"level 2: {ml.total_inner_parts()} inner parts "
        f"(trivial: {ml.is_trivial})"
    )

    engine = HiSVSimEngine(ranks, dry_run=True)
    _, single = engine.run(qc, partition)
    _, multi = engine.run(qc, partition, multilevel=ml)
    _, iqs = IQSEngine(ranks, dry_run=True).run(qc)
    print(f"\nsingle-level : {single.total_seconds:8.3f}s  ({single.summary()})")
    print(f"multi-level  : {multi.total_seconds:8.3f}s")
    print(f"IQS baseline : {iqs.total_seconds:8.3f}s")
    print(
        f"\nmulti-level reduction: "
        f"{100 * (1 - multi.total_seconds / single.total_seconds):.1f}% "
        f"(paper Fig. 10: avg 15.8%)"
    )
    print(
        f"factors over IQS: single {iqs.total_seconds / single.total_seconds:.2f}x, "
        f"multi {iqs.total_seconds / multi.total_seconds:.2f}x "
        f"(paper: up to 3.9x / 5.7x)"
    )

    # --- Sec. VI: hand the local computation to a GPU model ---------------
    gpus = 4
    small = adder(24)
    small.name = "adder_24"
    part = DagPPartitioner().partition(small, 24 - 2)
    hybrid = estimate_hybrid(small, part, num_gpus=gpus)
    hyquas = estimate_hyquas_baseline(small, num_gpus=gpus)
    print(
        f"\nhybrid estimate ({small.name}, {gpus} GPUs): "
        f"HiSVSIM+GPU {hybrid.total_seconds:.3f}s "
        f"vs HyQuas {hyquas.total_seconds:.3f}s"
    )


if __name__ == "__main__":
    main()
