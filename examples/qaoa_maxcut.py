#!/usr/bin/env python
"""Domain example: QAOA MaxCut energy evaluation under partitioned simulation.

The workload the paper's intro motivates — variational algorithm design
needs many circuit evaluations, so simulation throughput matters.  This
example evaluates the MaxCut objective of a QAOA ansatz over a small angle
grid, using the hierarchical executor, and reports how partitioning quality
(parts per strategy) would translate into distributed cost.

Run:  python examples/qaoa_maxcut.py
"""

import numpy as np

from repro.circuits.generators import qaoa
from repro.circuits.generators.qaoa import random_regular_edges
from repro.dist import HiSVSimEngine
from repro.partition import get_partitioner
from repro.sv import HierarchicalExecutor, StateVectorSimulator, zero_state


def maxcut_energy(state: np.ndarray, edges, n: int) -> float:
    """<C> = sum_edges 0.5 * (1 - <Z_a Z_b>)."""
    probs = np.abs(state) ** 2
    idx = np.arange(state.size, dtype=np.int64)
    energy = 0.0
    for a, b in edges:
        za = 1.0 - 2.0 * ((idx >> a) & 1)
        zb = 1.0 - 2.0 * ((idx >> b) & 1)
        energy += 0.5 * float(np.sum(probs * (1.0 - za * zb)))
    return energy


def main() -> None:
    n, p = 12, 2
    edges = random_regular_edges(n, 3, seed=3)
    print(f"QAOA MaxCut: {n} qubits, 3-regular graph with {len(edges)} edges, p={p}")

    # --- angle scan with the hierarchical executor -------------------------
    partitioner = get_partitioner("dagP")
    best = (-1.0, None)
    for gamma in (0.2, 0.4, 0.6):
        for beta in (0.2, 0.4):
            qc = qaoa(n, p=p, edges=edges, gammas=[gamma] * p, betas=[beta] * p)
            partition = partitioner.partition(qc, limit=8)
            state = zero_state(n)
            HierarchicalExecutor().run(qc, partition, state)
            e = maxcut_energy(state, edges, n)
            marker = ""
            if e > best[0]:
                best = (e, (gamma, beta))
                marker = "  <- best"
            print(
                f"  gamma={gamma:.1f} beta={beta:.1f}: <C>={e:7.3f} "
                f"({partition.num_parts} parts){marker}"
            )
    print(f"best angles: gamma={best[1][0]}, beta={best[1][1]}, <C>={best[0]:.3f}")

    # --- cross-check one evaluation against the flat simulator -------------
    gamma, beta = best[1]
    qc = qaoa(n, p=p, edges=edges, gammas=[gamma] * p, betas=[beta] * p)
    flat = StateVectorSimulator(n)
    flat.run(qc)
    assert np.isclose(maxcut_energy(flat.state, edges, n), best[0], atol=1e-9)

    # --- what would this cost distributed? ---------------------------------
    print("\ndistributed cost of the best evaluation (8 virtual ranks):")
    for strategy in ("Nat", "DFS", "dagP"):
        part = get_partitioner(strategy).partition(qc, n - 3)
        _, rep = HiSVSimEngine(8, dry_run=True).run(qc, part)
        print(
            f"  {strategy:5s}: {part.num_parts:2d} parts, "
            f"simulated {rep.total_seconds * 1e3:7.3f} ms "
            f"(comm {rep.comm_seconds * 1e3:6.3f} ms, "
            f"{rep.comm.total_bytes:,} bytes)"
        )


if __name__ == "__main__":
    main()
